"""Per-query EXPLAIN ANALYZE: the paper's evaluation, one query at a time.

The paper's argument (Sec. V) is a funnel: the filter phase scans every
tuple-list element, the approximation-vector bounds prune almost all of
them, and the refine phase random-accesses the table file only for the
survivors — 1.5%–22% as often as SII (Fig. 8), which is where the win in
Figs. 9–15 comes from.  The aggregate counters in :mod:`repro.obs.metrics`
show that funnel summed over a whole run; this module reproduces it for
*one* query, as a structured artifact:

* the candidate funnel — tuples scanned → exact shortcuts → bound-pruned →
  candidates → refined → results (plus the parallel refiner's late-pruned
  and deduplicated counts);
* per-attribute scan statistics — vector-list entries probed and how many
  were ndf, with each attribute's list layout and codec;
* lower-bound tightness — mean bound vs. mean true distance over the
  refined tuples, the quality measure behind the pruning rate;
* per-block prune counts when the block kernel ran;
* phase/shard time attribution and degradation annotations.

A :class:`ProfileCollector` rides along with one scan; engines allocate it
only when profiling is requested, and every hot-loop hook is guarded by a
single ``is not None`` check, so the profiled-off overhead is one local
load per tuple.  ``collector.build(report, ...)`` turns the counts into a
:class:`QueryProfile`, exposed as ``SearchReport.profile`` and rendered by
``repro query --explain-analyze``.

Invariants (asserted in the test suite): ``tuples_scanned == exact +
bound_pruned + candidates`` — every scanned live tuple takes exactly one
decision — and on the sequential path ``candidates == refined`` (the
parallel refiner additionally re-checks, so ``candidates == refined +
late_pruned + dedup_skipped`` there).  The funnel totals equal the
existing :class:`~repro.core.engine.SearchReport` counters exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "AttributeProfile",
    "QueryProfile",
    "ProfileCollector",
]


@dataclass
class AttributeProfile:
    """One queried attribute's share of the filter scan."""

    attr_id: int
    name: str = ""
    #: ``"text"`` or ``"numeric"``.
    kind: str = ""
    #: Vector-list layout (``TYPE_I`` … ``TYPE_IV``), when known.
    list_type: str = ""
    #: Wire codec of the attribute's vector list, when known.
    codec: str = ""
    #: Vector-list entries probed with a defined approximation vector.
    defined: int = 0
    #: Entries probed that were ndf (no defined value for the tuple).
    ndf: int = 0

    @property
    def entries_scanned(self) -> int:
        """Total vector-list entries probed for this attribute."""
        return self.defined + self.ndf

    def to_dict(self) -> dict:
        return {
            "attr_id": self.attr_id,
            "name": self.name,
            "kind": self.kind,
            "list_type": self.list_type,
            "codec": self.codec,
            "entries_scanned": self.entries_scanned,
            "defined": self.defined,
            "ndf": self.ndf,
        }


@dataclass
class QueryProfile:
    """The structured EXPLAIN ANALYZE artifact of one search."""

    # ---- provenance
    engine: str = ""
    kernel: str = "scalar"
    fail_mode: str = "raise"
    metric: str = ""
    k: int = 0
    parallel: bool = False
    workers: int = 0
    shards: int = 0

    # ---- candidate funnel (paper Fig. 8: accesses to the table file)
    tuples_scanned: int = 0
    exact_shortcuts: int = 0
    bound_pruned: int = 0
    candidates: int = 0
    #: Parallel refiner only: candidates whose estimate no longer beat the
    #: global pool by the time the refiner re-checked them.
    late_pruned: int = 0
    #: Parallel degrade mode only: candidates skipped because the tuple
    #: was already refined (shard-recovery re-scans re-emit candidates).
    dedup_skipped: int = 0
    refined: int = 0
    results: int = 0

    # ---- per-attribute scan
    attributes: List[AttributeProfile] = field(default_factory=list)

    # ---- lower-bound tightness over the refined tuples
    bound_sum: float = 0.0
    actual_sum: float = 0.0
    slack_max: float = 0.0

    # ---- block kernel
    blocks: int = 0
    block_pruned: List[int] = field(default_factory=list)

    # ---- phase times (modeled I/O + measured wall, like the report)
    filter_io_ms: float = 0.0
    filter_wall_ms: float = 0.0
    refine_io_ms: float = 0.0
    refine_wall_ms: float = 0.0
    planning_io_ms: float = 0.0
    query_time_ms: float = 0.0

    # ---- parallel shard attribution
    shard_rows: List[dict] = field(default_factory=list)

    # ---- degradation
    degraded: bool = False
    lost_shards: List[int] = field(default_factory=list)
    lost_tid_ranges: List[Tuple[int, int]] = field(default_factory=list)

    # ------------------------------------------------------------- derived

    @property
    def prune_rate(self) -> float:
        """Fraction of scanned tuples the bounds eliminated."""
        if self.tuples_scanned == 0:
            return 0.0
        return self.bound_pruned / self.tuples_scanned

    @property
    def access_rate(self) -> float:
        """Refined fraction of the scan — the paper's Fig. 8 ratio."""
        if self.tuples_scanned == 0:
            return 0.0
        return self.refined / self.tuples_scanned

    @property
    def mean_bound(self) -> float:
        return self.bound_sum / self.refined if self.refined else 0.0

    @property
    def mean_actual(self) -> float:
        return self.actual_sum / self.refined if self.refined else 0.0

    @property
    def mean_slack(self) -> float:
        """Mean (actual − bound) over refined tuples; 0 means exact bounds."""
        return self.mean_actual - self.mean_bound

    @property
    def tightness(self) -> float:
        """mean bound / mean actual in [0, 1]; 1.0 means perfect bounds."""
        if self.refined == 0 or self.actual_sum == 0.0:
            return 0.0
        return self.bound_sum / self.actual_sum

    # ------------------------------------------------------------ renderers

    def to_dict(self) -> dict:
        """JSON-able representation (``--explain-analyze --format json``)."""
        out = {
            "engine": self.engine,
            "kernel": self.kernel,
            "fail_mode": self.fail_mode,
            "metric": self.metric,
            "k": self.k,
            "parallel": self.parallel,
            "funnel": {
                "tuples_scanned": self.tuples_scanned,
                "exact_shortcuts": self.exact_shortcuts,
                "bound_pruned": self.bound_pruned,
                "candidates": self.candidates,
                "late_pruned": self.late_pruned,
                "dedup_skipped": self.dedup_skipped,
                "refined": self.refined,
                "results": self.results,
                "prune_rate": self.prune_rate,
                "access_rate": self.access_rate,
            },
            "attributes": [attr.to_dict() for attr in self.attributes],
            "tightness": {
                "refined": self.refined,
                "mean_bound": self.mean_bound,
                "mean_actual": self.mean_actual,
                "mean_slack": self.mean_slack,
                "max_slack": self.slack_max,
                "tightness": self.tightness,
            },
            "phases": {
                "filter_io_ms": self.filter_io_ms,
                "filter_wall_ms": self.filter_wall_ms,
                "refine_io_ms": self.refine_io_ms,
                "refine_wall_ms": self.refine_wall_ms,
                "planning_io_ms": self.planning_io_ms,
                "query_time_ms": self.query_time_ms,
            },
        }
        if self.kernel in ("block", "v3"):
            out["blocks"] = {
                "count": self.blocks,
                "pruned_per_block": list(self.block_pruned),
            }
        if self.parallel:
            out["workers"] = self.workers
            out["shards"] = self.shards
            out["shard_rows"] = list(self.shard_rows)
        if self.degraded:
            out["degraded"] = True
            out["lost_shards"] = list(self.lost_shards)
            out["lost_tid_ranges"] = [list(r) for r in self.lost_tid_ranges]
        return out

    def format(self) -> str:
        """The human-readable EXPLAIN ANALYZE block."""
        lines: List[str] = []
        head = (
            f"EXPLAIN ANALYZE  engine={self.engine}  kernel={self.kernel}  "
            f"fail_mode={self.fail_mode}  k={self.k}"
        )
        if self.metric:
            head += f"  metric={self.metric}"
        if self.parallel:
            head += f"  parallel({self.workers} workers, {self.shards} shards)"
        lines.append(head)

        scanned = self.tuples_scanned

        def pct(count: int) -> str:
            if scanned == 0:
                return ""
            return f"  ({100.0 * count / scanned:.1f}%)"

        lines.append("candidate funnel")
        lines.append(f"  tuples scanned   {scanned:>10}")
        lines.append(
            f"  exact shortcuts  {self.exact_shortcuts:>10}{pct(self.exact_shortcuts)}"
        )
        lines.append(
            f"  bound-pruned     {self.bound_pruned:>10}{pct(self.bound_pruned)}"
        )
        lines.append(f"  candidates       {self.candidates:>10}{pct(self.candidates)}")
        if self.late_pruned:
            lines.append(
                f"  late-pruned      {self.late_pruned:>10}  (refiner re-check)"
            )
        if self.dedup_skipped:
            lines.append(
                f"  deduplicated     {self.dedup_skipped:>10}  (recovery re-scan)"
            )
        lines.append(
            f"  refined          {self.refined:>10}{pct(self.refined)}"
            "  <- table-file random accesses"
        )
        lines.append(f"  results          {self.results:>10}")

        if self.attributes:
            lines.append("per-attribute scan")
            name_w = max(len(a.name or str(a.attr_id)) for a in self.attributes)
            name_w = max(name_w, len("attribute"))
            lines.append(
                f"  {'attribute':<{name_w}}  {'kind':<7}  {'layout':<8}  "
                f"{'codec':<10}  {'entries':>9}  {'defined':>9}  {'ndf':>9}"
            )
            for attr in self.attributes:
                lines.append(
                    f"  {attr.name or attr.attr_id:<{name_w}}  {attr.kind:<7}  "
                    f"{attr.list_type:<8}  {attr.codec:<10}  "
                    f"{attr.entries_scanned:>9}  {attr.defined:>9}  {attr.ndf:>9}"
                )

        if self.refined:
            lines.append("lower-bound tightness (refined tuples)")
            lines.append(
                f"  mean bound {self.mean_bound:.3f}  mean actual "
                f"{self.mean_actual:.3f}  mean slack {self.mean_slack:.3f}  "
                f"max slack {self.slack_max:.3f}  tightness {self.tightness:.3f}"
            )

        if self.kernel in ("block", "v3") and self.blocks:
            pruned = self.block_pruned or [0]
            lines.append(
                f"block kernel: {self.blocks} blocks, pruned/block "
                f"min {min(pruned)}  mean {sum(pruned) / len(pruned):.1f}  "
                f"max {max(pruned)}"
            )

        lines.append("phase times (modeled I/O + measured wall)")
        lines.append(
            f"  filter  io {self.filter_io_ms:.1f} ms  wall "
            f"{self.filter_wall_ms:.2f} ms"
        )
        lines.append(
            f"  refine  io {self.refine_io_ms:.1f} ms  wall "
            f"{self.refine_wall_ms:.2f} ms"
        )
        if self.parallel:
            lines.append(f"  planning io {self.planning_io_ms:.1f} ms")
        lines.append(f"  total   {self.query_time_ms:.1f} ms modeled")

        if self.shard_rows:
            lines.append("shards")
            lines.append(
                f"  {'shard':>5}  {'worker':<8}  {'tuples':>8}  "
                f"{'io_ms':>9}  {'cpu_ms':>9}"
            )
            for row in self.shard_rows:
                lines.append(
                    f"  {row.get('shard', ''):>5}  {str(row.get('worker', '')):<8}  "
                    f"{row.get('tuples', 0):>8}  {row.get('io_ms', 0.0):>9.1f}  "
                    f"{row.get('cpu_ms', 0.0):>9.2f}"
                )

        if self.degraded:
            lines.append(
                f"DEGRADED: lost shards {self.lost_shards} covering tid "
                f"ranges {self.lost_tid_ranges}; funnel counts are best-effort"
            )
        return "\n".join(lines)


class ProfileCollector:
    """Accumulates one query's funnel/attribute/tightness counts.

    One collector follows one query through one scan.  The parallel
    executor gives each shard worker its own collector (no shared mutable
    state on the hot path) and :meth:`absorb`\\ s them into a per-query
    master on the refiner thread.

    Every hook is O(1) (``on_payloads``/``on_block`` are O(terms)) and the
    engines call them only when profiling is on.
    """

    __slots__ = (
        "attr_ids",
        "slots",
        "defined",
        "ndf",
        "exact",
        "pruned",
        "candidates",
        "refined",
        "late_pruned",
        "dedup_skipped",
        "blocks",
        "block_pruned",
        "bound_sum",
        "actual_sum",
        "slack_max",
    )

    def __init__(self, attr_ids: Sequence[int], slots: Sequence[int]) -> None:
        self.attr_ids = list(attr_ids)
        #: Index of each queried attribute in the scan's payload row — the
        #: same mapping :class:`~repro.core.engine.BoundEvaluator` uses, so
        #: union scans (batch/parallel) probe the right columns.
        self.slots = list(slots)
        n = len(self.attr_ids)
        self.defined = [0] * n
        self.ndf = [0] * n
        self.exact = 0
        self.pruned = 0
        self.candidates = 0
        self.refined = 0
        self.late_pruned = 0
        self.dedup_skipped = 0
        self.blocks = 0
        self.block_pruned: List[int] = []
        self.bound_sum = 0.0
        self.actual_sum = 0.0
        self.slack_max = 0.0

    @classmethod
    def for_query(
        cls, query, position: Optional[Mapping[int, int]] = None
    ) -> "ProfileCollector":
        """A collector for *query*; *position* maps attr id → payload slot
        for union scans (None = payloads align 1:1 with the terms)."""
        attr_ids = [term.attr.attr_id for term in query.terms]
        if position is None:
            slots = list(range(len(attr_ids)))
        else:
            slots = [position[attr_id] for attr_id in attr_ids]
        return cls(attr_ids, slots)

    # ------------------------------------------------------------ scan side

    def on_payloads(self, payloads: Sequence[object]) -> None:
        """One tuple's payload row was decoded (scalar path)."""
        defined = self.defined
        ndf = self.ndf
        for i, slot in enumerate(self.slots):
            if payloads[slot] is None:
                ndf[i] += 1
            else:
                defined[i] += 1

    def on_block(self, columns: Sequence[Sequence[object]], count: int) -> None:
        """One block of *count* payload columns was decoded (block path)."""
        self.blocks += 1
        self.block_pruned.append(0)
        for i, slot in enumerate(self.slots):
            column = columns[slot]
            defined = 0
            for j in range(count):
                if column[j] is not None:
                    defined += 1
            self.defined[i] += defined
            self.ndf[i] += count - defined

    def on_segments(self, segments: Sequence[object], count: int) -> None:
        """One block of *count* columnar segments was decoded (v3 path).

        Mirrors :meth:`on_block`: each segment knows how many of its
        *count* tuples store a defined value, so the per-attribute
        defined/ndf tallies match the scalar probe exactly.
        """
        self.blocks += 1
        self.block_pruned.append(0)
        for i, slot in enumerate(self.slots):
            defined = segments[slot].defined_count(count)
            self.defined[i] += defined
            self.ndf[i] += count - defined

    # -------------------------------------------------------- decision side

    def on_exact(self) -> None:
        self.exact += 1

    def on_pruned(self) -> None:
        self.pruned += 1
        if self.block_pruned:
            self.block_pruned[-1] += 1

    def on_candidate(self) -> None:
        self.candidates += 1

    def on_late_pruned(self) -> None:
        self.late_pruned += 1

    def on_dedup_skipped(self) -> None:
        self.dedup_skipped += 1

    def on_refined(self, estimated: float, actual: float) -> None:
        self.refined += 1
        self.bound_sum += estimated
        self.actual_sum += actual
        slack = actual - estimated
        if slack > self.slack_max:
            self.slack_max = slack

    # ------------------------------------------------------------ reduction

    @property
    def scanned(self) -> int:
        """Live tuples that took a funnel decision."""
        return self.exact + self.pruned + self.candidates

    def absorb(self, other: "ProfileCollector") -> None:
        """Merge a shard-local collector for the same query into this one."""
        for i in range(len(self.defined)):
            self.defined[i] += other.defined[i]
            self.ndf[i] += other.ndf[i]
        self.exact += other.exact
        self.pruned += other.pruned
        self.candidates += other.candidates
        self.refined += other.refined
        self.late_pruned += other.late_pruned
        self.dedup_skipped += other.dedup_skipped
        self.blocks += other.blocks
        self.block_pruned.extend(other.block_pruned)
        self.bound_sum += other.bound_sum
        self.actual_sum += other.actual_sum
        if other.slack_max > self.slack_max:
            self.slack_max = other.slack_max

    def build(
        self,
        report,
        *,
        query=None,
        index=None,
        engine: str = "",
        kernel: str = "scalar",
        fail_mode: str = "raise",
        metric: str = "",
        k: int = 0,
        parallel: bool = False,
        workers: int = 0,
        shards: int = 0,
        shard_rows: Optional[List[dict]] = None,
    ) -> QueryProfile:
        """Bake the counts plus the finished *report* into a profile."""
        profile = QueryProfile(
            engine=engine,
            kernel=kernel,
            fail_mode=fail_mode,
            metric=metric,
            k=k,
            parallel=parallel,
            workers=workers,
            shards=shards,
            tuples_scanned=report.tuples_scanned,
            exact_shortcuts=self.exact,
            bound_pruned=self.pruned,
            candidates=self.candidates,
            late_pruned=self.late_pruned,
            dedup_skipped=self.dedup_skipped,
            refined=self.refined,
            results=len(report.results),
            bound_sum=self.bound_sum,
            actual_sum=self.actual_sum,
            slack_max=self.slack_max,
            blocks=self.blocks,
            block_pruned=list(self.block_pruned),
            filter_io_ms=report.filter_io_ms,
            filter_wall_ms=report.filter_wall_s * 1000.0,
            refine_io_ms=report.refine_io_ms,
            refine_wall_ms=report.refine_wall_s * 1000.0,
            planning_io_ms=getattr(report, "planning_io_ms", 0.0),
            query_time_ms=report.query_time_ms,
            shard_rows=list(shard_rows or []),
            degraded=report.degraded,
            lost_shards=list(report.lost_shards),
            lost_tid_ranges=list(report.lost_tid_ranges),
        )
        for i, attr_id in enumerate(self.attr_ids):
            attr = AttributeProfile(
                attr_id=attr_id, defined=self.defined[i], ndf=self.ndf[i]
            )
            if query is not None:
                term = query.terms[i]
                attr.name = term.attr.name
                attr.kind = "text" if term.attr.is_text else "numeric"
            if index is not None:
                entry = index.entry(attr_id)
                if entry is not None:
                    attr.list_type = entry.list_type.name
                    attr.codec = entry.codec
            profile.attributes.append(attr)
        return profile
