"""A live observability endpoint on the standard library's HTTP server.

``repro obs serve`` turns the process-global registry and tracer into a
scrapeable daemon — the operability seed for the roadmap's always-on query
service:

* ``/metrics`` — Prometheus text exposition (version 0.0.4);
* ``/metrics.json`` — the registry's JSON snapshot;
* ``/healthz`` — liveness (uptime, spans buffered, requests served);
* ``/traces/recent`` — the newest root spans from an in-memory ring
  buffer (``?limit=N``, newest first).

Everything is stdlib: :class:`http.server.ThreadingHTTPServer` with a
small routing handler.  The server is embeddable (``ObsServer(port=0)``
binds an ephemeral port; tests and in-process workloads use that) and the
metrics source is pluggable — pass ``registry_provider`` to serve e.g. a
snapshot sidecar re-read per request instead of the live registry.

The span ring buffer (:class:`SpanRingBuffer`) implements the JSONL sink
protocol (``write``/``close``), so it can be a tracer's sink directly or
tee alongside a file sink via :class:`TeeSink`.
"""

from __future__ import annotations

import collections
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs.export import render_json, render_prometheus
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Span

__all__ = [
    "SpanRingBuffer",
    "TeeSink",
    "ObsServer",
    "PROMETHEUS_CONTENT_TYPE",
    "JSON_CONTENT_TYPE",
]

#: Content type of the text exposition format we render.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Content type of every JSON response.
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class SpanRingBuffer:
    """The last *capacity* completed root spans, as JSON-able dicts.

    Implements the span-sink protocol (:meth:`write`/:meth:`close`), so a
    :class:`~repro.obs.trace.Tracer` can fan root spans straight into it.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._spans: "collections.deque" = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.spans_written = 0

    def write(self, span: Span) -> None:
        """Append one completed root span (sink protocol)."""
        entry = span.to_dict()
        with self._lock:
            self._spans.append(entry)
            self.spans_written += 1

    def close(self) -> None:
        """Sink protocol no-op (nothing to flush)."""

    def recent(self, limit: Optional[int] = None) -> List[dict]:
        """Newest-first buffered spans, at most *limit* of them."""
        with self._lock:
            items = list(self._spans)
        items.reverse()
        if limit is not None and limit >= 0:
            items = items[:limit]
        return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class TeeSink:
    """Fans the sink protocol out to several sinks (file + ring, say)."""

    def __init__(self, *sinks) -> None:
        self.sinks = [sink for sink in sinks if sink is not None]
        self.spans_written = 0

    def write(self, span: Span) -> None:
        for sink in self.sinks:
            sink.write(span)
        self.spans_written += 1

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class ObsServer:
    """The /metrics + /traces daemon around a registry and a span ring.

    *registry_provider* overrides where ``/metrics`` reads from — called
    per request, it can re-load a metrics sidecar so the endpoint follows
    a CLI workload writing snapshots from another process.  Requests are
    counted into the live process registry either way
    (``repro_obs_http_requests_total``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry: Optional[MetricsRegistry] = None,
        registry_provider: Optional[Callable[[], MetricsRegistry]] = None,
        ring: Optional[SpanRingBuffer] = None,
    ) -> None:
        self.ring = ring if ring is not None else SpanRingBuffer()
        self._registry = registry
        self._provider = registry_provider
        self._started = time.time()
        self.requests_served = 0
        server = self

        class _Handler(BaseHTTPRequestHandler):
            # Quiet by default; the CLI prints its own access summary.
            def log_message(self, fmt, *args):  # noqa: D102 - stdlib hook
                pass

            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                server._route(self)

            def do_POST(self) -> None:  # noqa: N802 - stdlib naming
                server._route_post(self)

        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ---------------------------------------------------------------- state

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def metrics_registry(self) -> MetricsRegistry:
        """The registry a ``/metrics`` request renders right now."""
        if self._provider is not None:
            return self._provider()
        if self._registry is not None:
            return self._registry
        return get_registry()

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ObsServer":
        """Serve on a daemon thread; returns self (for chaining)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-obs-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self.httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and release the socket."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObsServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -------------------------------------------------------------- routing

    def _count_request(self, path: str) -> None:
        """Bump the per-path request counter (shared by GET and POST)."""
        self.requests_served += 1
        get_registry().counter(
            "repro_obs_http_requests_total",
            labels={"path": path},
            help="Requests served by the observability endpoint.",
        ).inc()

    def _health(self) -> Tuple[int, dict]:
        """The ``/healthz`` status code and payload.

        Subclasses (the serving daemon) extend the payload — and may
        return 503 while draining — without re-implementing the route.
        """
        return 200, {
            "status": "ok",
            "uptime_s": round(time.time() - self._started, 3),
            "spans_buffered": len(self.ring),
            "requests_served": self.requests_served,
        }

    def _route_extra(self, handler: BaseHTTPRequestHandler, path: str, parsed) -> bool:
        """Subclass hook for extra GET routes; True means it responded."""
        return False

    def _route_post(self, handler: BaseHTTPRequestHandler) -> None:
        """POST routing; the base server is read-only (405 on known paths)."""
        parsed = urlparse(handler.path)
        path = parsed.path.rstrip("/") or "/"
        self._count_request(path)
        try:
            if path in ("/metrics", "/metrics.json", "/healthz", "/traces/recent"):
                self._send(
                    handler,
                    405,
                    '{"error": "method not allowed; use GET"}',
                    JSON_CONTENT_TYPE,
                )
            else:
                self._send(
                    handler, 404, '{"error": "unknown path"}', JSON_CONTENT_TYPE
                )
        except BrokenPipeError:  # client went away mid-response
            pass

    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(handler.path)
        path = parsed.path.rstrip("/") or "/"
        self._count_request(path)
        try:
            if path == "/metrics":
                body = render_prometheus(self.metrics_registry())
                self._send(handler, 200, body, PROMETHEUS_CONTENT_TYPE)
            elif path == "/metrics.json":
                body = render_json(self.metrics_registry())
                self._send(handler, 200, body, JSON_CONTENT_TYPE)
            elif path == "/healthz":
                code, payload = self._health()
                self._send(
                    handler,
                    code,
                    json.dumps(payload, sort_keys=True),
                    JSON_CONTENT_TYPE,
                )
            elif path == "/traces/recent":
                query = parse_qs(parsed.query)
                limit = None
                if "limit" in query:
                    try:
                        limit = max(0, int(query["limit"][0]))
                    except ValueError:
                        self._send(
                            handler,
                            400,
                            '{"error": "limit must be an integer"}',
                            JSON_CONTENT_TYPE,
                        )
                        return
                payload = {"spans": self.ring.recent(limit)}
                self._send(
                    handler,
                    200,
                    json.dumps(payload, sort_keys=True),
                    JSON_CONTENT_TYPE,
                )
            elif self._route_extra(handler, path, parsed):
                pass
            else:
                self._send(
                    handler,
                    404,
                    '{"error": "unknown path", "paths": '
                    '["/metrics", "/metrics.json", "/healthz", "/traces/recent"]}',
                    JSON_CONTENT_TYPE,
                )
        except BrokenPipeError:  # client went away mid-response
            pass

    @staticmethod
    def _send(
        handler: BaseHTTPRequestHandler,
        code: int,
        body: str,
        content_type: str,
        headers: Optional[dict] = None,
    ) -> None:
        data = body.encode("utf-8")
        handler.send_response(code)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            handler.send_header(name, str(value))
        handler.end_headers()
        handler.wfile.write(data)
