"""Observability: metrics registry, span tracing, exporters.

The measurement substrate behind the paper's figures, generalised for
production: every layer (engine, storage, maintenance, concurrency,
distributed, bench) feeds counters/gauges/histograms into a process-global
:class:`MetricsRegistry`, query execution is traced as nested
``query -> filter/refine`` spans, and the whole state exports as
Prometheus text or JSON snapshots (``repro stats``).

See ``docs/observability.md`` for the metric catalog and span names.
"""

from repro.obs.export import (
    load_snapshot,
    render_json,
    render_prometheus,
    write_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.profile import AttributeProfile, ProfileCollector, QueryProfile
from repro.obs.server import (
    PROMETHEUS_CONTENT_TYPE,
    ObsServer,
    SpanRingBuffer,
    TeeSink,
)
from repro.obs.trace import (
    SLOW_QUERY_LOGGER,
    JsonlSpanSink,
    SlowQueryLog,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
)
from repro.obs.trace_analysis import (
    TraceAnalysis,
    analyze_spans,
    format_analysis,
    load_spans,
)

__all__ = [
    "AttributeProfile",
    "ProfileCollector",
    "QueryProfile",
    "ObsServer",
    "SpanRingBuffer",
    "TeeSink",
    "PROMETHEUS_CONTENT_TYPE",
    "TraceAnalysis",
    "analyze_spans",
    "format_analysis",
    "load_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_MS_BUCKETS",
    "get_registry",
    "set_registry",
    "Span",
    "Tracer",
    "JsonlSpanSink",
    "SlowQueryLog",
    "SLOW_QUERY_LOGGER",
    "get_tracer",
    "set_tracer",
    "render_prometheus",
    "render_json",
    "write_snapshot",
    "load_snapshot",
]
