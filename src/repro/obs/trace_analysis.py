"""Offline aggregation of JSONL span sinks (``repro trace analyze``).

``repro query --trace spans.jsonl`` (and the workload/bench commands)
write one JSON line per completed root span, children nested.  This
module turns such a file back into the numbers an operator wants first:

* a per-span-name table — count, total/mean and p50/p95/p99 durations —
  over *every* span in the tree, not just roots;
* a phase breakdown of the root ``query`` spans (filter vs. refine wall
  and modeled I/O, reconciling with the paper's Figs. 9/15 convention);
* the slowest root spans, for drill-down.

Pure functions over parsed dicts; the CLI glues file loading and the
fixed-width rendering together.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


def percentile(values: List[float], pct: float) -> float:
    """Deferred re-export of :func:`repro.analysis.stats.percentile`.

    ``repro.obs`` sits below ``repro.analysis`` in the import graph
    (storage publishes metrics), so importing at module scope would be
    circular; by first call everything is initialised.
    """
    from repro.analysis.stats import percentile as _percentile

    return _percentile(values, pct)

__all__ = [
    "SpanNameStats",
    "TraceAnalysis",
    "load_spans",
    "analyze_spans",
    "format_analysis",
]


@dataclass
class SpanNameStats:
    """Aggregated durations of every span sharing one name."""

    name: str
    durations_ms: List[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.durations_ms)

    @property
    def total_ms(self) -> float:
        return sum(self.durations_ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def pct(self, p: float) -> float:
        return percentile(self.durations_ms, p) if self.durations_ms else 0.0


@dataclass
class TraceAnalysis:
    """Everything :func:`analyze_spans` derives from one span file."""

    roots: int = 0
    spans: int = 0
    by_name: Dict[str, SpanNameStats] = field(default_factory=dict)
    #: Root ``query`` spans' modeled times (their ``modeled_ms`` attr).
    modeled_ms: List[float] = field(default_factory=list)
    #: Summed ``io_ms`` attrs of ``filter``/``refine`` children.
    filter_io_ms: float = 0.0
    refine_io_ms: float = 0.0
    #: The slowest root spans: (duration_ms, name, attrs).
    slowest: List[Tuple[float, str, dict]] = field(default_factory=list)


def load_spans(path: str) -> List[dict]:
    """Parse a JSONL span sink; raises ValueError on a malformed line."""
    spans: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not a JSON span: {exc}") from exc
            if not isinstance(span, dict) or "name" not in span:
                raise ValueError(f"{path}:{lineno}: not a span object")
            spans.append(span)
    return spans


def walk(span: dict, depth: int = 0) -> Iterator[Tuple[dict, int]]:
    """Yield (span, depth) over the span and all descendants, pre-order."""
    yield span, depth
    for child in span.get("children", ()):
        yield from walk(child, depth + 1)


def analyze_spans(roots: List[dict], slowest: int = 5) -> TraceAnalysis:
    """Aggregate a list of root spans into a :class:`TraceAnalysis`."""
    analysis = TraceAnalysis(roots=len(roots))
    ranked: List[Tuple[float, str, dict]] = []
    for root in roots:
        duration = float(root.get("duration_ms", 0.0))
        attrs = dict(root.get("attrs", {}))
        ranked.append((duration, str(root.get("name", "")), attrs))
        if "modeled_ms" in attrs:
            try:
                analysis.modeled_ms.append(float(attrs["modeled_ms"]))
            except (TypeError, ValueError):
                pass
        for span, _depth in walk(root):
            analysis.spans += 1
            name = str(span.get("name", ""))
            stats = analysis.by_name.get(name)
            if stats is None:
                stats = analysis.by_name[name] = SpanNameStats(name=name)
            stats.durations_ms.append(float(span.get("duration_ms", 0.0)))
            if name in ("filter", "refine"):
                io_ms = span.get("attrs", {}).get("io_ms")
                if io_ms is not None:
                    try:
                        value = float(io_ms)
                    except (TypeError, ValueError):
                        value = 0.0
                    if name == "filter":
                        analysis.filter_io_ms += value
                    else:
                        analysis.refine_io_ms += value
    ranked.sort(key=lambda item: item[0], reverse=True)
    analysis.slowest = ranked[:slowest]
    return analysis


def _fmt_attrs(attrs: dict, limit: int = 4) -> str:
    parts = []
    for key in sorted(attrs):
        if key in ("modeled_ms",):
            parts.insert(0, f"{key}={attrs[key]:.1f}" if isinstance(attrs[key], float) else f"{key}={attrs[key]}")
        else:
            parts.append(f"{key}={attrs[key]}")
    return " ".join(parts[:limit])


def format_analysis(analysis: TraceAnalysis) -> str:
    """The fixed-width report ``repro trace analyze`` prints."""
    lines: List[str] = []
    lines.append(
        f"{analysis.roots} root span(s), {analysis.spans} span(s) total"
    )

    if analysis.by_name:
        lines.append("")
        lines.append("per-span durations (wall ms)")
        name_w = max(len(name) for name in analysis.by_name)
        name_w = max(name_w, len("span"))
        lines.append(
            f"  {'span':<{name_w}}  {'count':>6}  {'total':>10}  {'mean':>9}  "
            f"{'p50':>9}  {'p95':>9}  {'p99':>9}"
        )
        ordered = sorted(
            analysis.by_name.values(), key=lambda s: s.total_ms, reverse=True
        )
        for stats in ordered:
            lines.append(
                f"  {stats.name:<{name_w}}  {stats.count:>6}  "
                f"{stats.total_ms:>10.2f}  {stats.mean_ms:>9.3f}  "
                f"{stats.pct(50):>9.3f}  {stats.pct(95):>9.3f}  "
                f"{stats.pct(99):>9.3f}"
            )

    if analysis.modeled_ms:
        lines.append("")
        lines.append("modeled query time (ms; the paper's per-query metric)")
        values = analysis.modeled_ms
        lines.append(
            f"  count {len(values)}  mean {sum(values) / len(values):.1f}  "
            f"p50 {percentile(values, 50):.1f}  p95 {percentile(values, 95):.1f}  "
            f"p99 {percentile(values, 99):.1f}"
        )
        lines.append(
            f"  phase modeled I/O: filter {analysis.filter_io_ms:.1f} ms, "
            f"refine {analysis.refine_io_ms:.1f} ms across all queries"
        )

    if analysis.slowest:
        lines.append("")
        lines.append("slowest root spans")
        for duration, name, attrs in analysis.slowest:
            summary = _fmt_attrs(attrs)
            lines.append(f"  {duration:>9.2f} ms  {name}  {summary}".rstrip())
    return "\n".join(lines)


def analyze_file(path: str, slowest: int = 5) -> TraceAnalysis:
    """Load and aggregate one JSONL span file."""
    return analyze_spans(load_spans(path), slowest=slowest)
