"""Exporters: Prometheus text exposition and JSON-lines snapshots.

Two machine-readable views of a :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_prometheus` — the text exposition format (version 0.0.4)
  scraped by Prometheus-compatible collectors.  Histograms export the
  standard cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``,
  from which p50/p95/p99 are derivable with ``histogram_quantile``.
* :func:`write_snapshot` / :func:`load_snapshot` — a JSON snapshot file,
  the interchange format between CLI invocations (``repro query`` writes a
  sidecar, ``repro stats`` re-renders it) and the artifact the bench
  harness drops next to every result table.
"""

from __future__ import annotations

import json
import math
from typing import Mapping, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "render_prometheus",
    "render_json",
    "write_snapshot",
    "load_snapshot",
]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels, extra: Optional[Mapping[str, str]] = None) -> str:
    items = list(labels)
    if extra:
        items.extend(extra.items())
    if not items:
        return ""
    rendered = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in items
    )
    return "{" + rendered + "}"


def _number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (collectors refreshed)."""
    registry.collect()
    lines = []
    seen_headers = set()

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for instrument in registry.instruments():
        if isinstance(instrument, Counter):
            header(instrument.name, "counter", instrument.help)
            lines.append(
                f"{instrument.name}{_label_str(instrument.labels)} "
                f"{_number(instrument.value)}"
            )
        elif isinstance(instrument, Gauge):
            header(instrument.name, "gauge", instrument.help)
            lines.append(
                f"{instrument.name}{_label_str(instrument.labels)} "
                f"{_number(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            header(instrument.name, "histogram", instrument.help)
            cumulative = instrument.cumulative_counts()
            for bound, count in zip(instrument.bounds, cumulative):
                le = _label_str(instrument.labels, {"le": _number(bound)})
                lines.append(f"{instrument.name}_bucket{le} {count}")
            le_inf = _label_str(instrument.labels, {"le": "+Inf"})
            lines.append(f"{instrument.name}_bucket{le_inf} {cumulative[-1]}")
            plain = _label_str(instrument.labels)
            lines.append(f"{instrument.name}_sum{plain} {_number(instrument.sum)}")
            lines.append(f"{instrument.name}_count{plain} {instrument.count}")
    return "\n".join(lines) + "\n"


def render_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def write_snapshot(registry: MetricsRegistry, path: str) -> str:
    """Persist the snapshot to *path*; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_json(registry))
        fh.write("\n")
    return path


def load_snapshot(source: Union[str, Mapping[str, object]]) -> MetricsRegistry:
    """Rebuild a registry from a snapshot file path or parsed dict."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    else:
        data = source
    return MetricsRegistry.from_snapshot(data)
