"""Metrics registry: counters, gauges and fixed-bucket histograms.

The paper's entire evaluation is built on counting — table-file accesses
(Fig. 8), filter vs. refine time (Figs. 9/15), per-query time
(Figs. 10-14, 16) — but production operation needs those counts
*aggregated*: totals, rates and percentiles across millions of queries,
not one :class:`~repro.core.engine.SearchReport` at a time.  This module
is the aggregation substrate: a process-global default registry that every
instrumented layer (engine, storage, maintenance, distributed) feeds, plus
injectable instances so tests observe their own deltas in isolation.

Design notes:

* Instruments are identified by ``(name, labels)``; :meth:`MetricsRegistry.counter`
  et al. are get-or-create, so call sites never coordinate registration.
* Histograms use fixed bucket upper bounds (Prometheus-style cumulative
  export) and answer p50/p95/p99 by linear interpolation inside the
  winning bucket — the standard fixed-bucket estimator.
* Gauges for expensive-to-maintain values (disk counters, cache hit rate)
  are refreshed lazily through *collectors* — callbacks run at snapshot
  time — so the hot I/O path pays nothing for observability.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_MS_BUCKETS",
    "get_registry",
    "set_registry",
]

#: Label sets are stored canonically as sorted (key, value) tuples.
LabelItems = Tuple[Tuple[str, str], ...]

#: Default buckets for millisecond-valued histograms: half-decade spacing
#: from sub-millisecond (cache-hit queries) to tens of seconds (cold full
#: sweeps on the modeled 2009 drive).
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)


def _canonical_labels(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        """Current cumulative count."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount


class Gauge:
    """A value that can go up and down (or be overwritten wholesale)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by *amount* (either sign)."""
        with self._lock:
            self._value += amount


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Buckets are *upper bounds* in ascending order; an implicit +inf bucket
    catches the tail.  Export is cumulative (Prometheus ``le`` semantics);
    percentiles interpolate linearly inside the winning bucket, clamped to
    the observed min/max so tiny samples don't report bucket-edge fiction.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        help: str = "",
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bucket bounds must strictly increase")
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; last slot is the +inf bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            idx = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    idx = i
                    break
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def min(self) -> Optional[float]:
        """Smallest observation, or None before any."""
        return self._min if self._count else None

    @property
    def max(self) -> Optional[float]:
        """Largest observation, or None before any."""
        return self._max if self._count else None

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean, or None before any observation."""
        return self._sum / self._count if self._count else None

    def bucket_counts(self) -> List[int]:
        """Non-cumulative per-bucket counts (last slot = +inf bucket)."""
        return list(self._counts)

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per bound plus the +inf total (``le`` export)."""
        out: List[int] = []
        running = 0
        for count in self._counts:
            running += count
            out.append(running)
        return out

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (q in [0, 1]); None before any data.

        Finds the bucket holding the target rank, interpolates linearly
        between the bucket's bounds, and clamps to observed min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return None
        rank = q * self._count
        running = 0
        lower = 0.0
        for i, count in enumerate(self._counts):
            upper = self.bounds[i] if i < len(self.bounds) else self._max
            if running + count >= rank and count > 0:
                within = (rank - running) / count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, within))
                return max(self._min, min(self._max, estimate))
            running += count
            lower = upper
        return self._max

    @property
    def p50(self) -> Optional[float]:
        """Median estimate."""
        return self.percentile(0.50)

    @property
    def p95(self) -> Optional[float]:
        """95th-percentile estimate."""
        return self.percentile(0.95)

    @property
    def p99(self) -> Optional[float]:
        """99th-percentile estimate."""
        return self.percentile(0.99)


class MetricsRegistry:
    """Get-or-create home for every instrument, plus snapshot support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------ factories

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Counter:
        """The counter with this name and label set (created on first use)."""
        return self._get(Counter, name, labels, help)

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        """The gauge with this name and label set (created on first use)."""
        return self._get(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> Histogram:
        """The histogram with this name and label set (created on first use)."""
        key = (name, _canonical_labels(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = Histogram(name, key[1], help=help, buckets=buckets)
                self._instruments[key] = instrument
            elif not isinstance(instrument, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument

    def _get(self, cls, name, labels, help):
        key = (name, _canonical_labels(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], help=help)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument

    # ----------------------------------------------------------- collectors

    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Add a callback refreshing lazy gauges before each snapshot."""
        with self._lock:
            self._collectors.append(fn)

    def collect(self) -> None:
        """Run every registered collector (snapshot/export call this)."""
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn(self)

    # ------------------------------------------------------------ iteration

    def instruments(self) -> List[object]:
        """Every instrument, sorted by (name, labels) for stable export."""
        with self._lock:
            return [
                self._instruments[key] for key in sorted(self._instruments)
            ]

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """A JSON-able dump of every instrument (collectors refreshed)."""
        self.collect()
        counters = []
        gauges = []
        histograms = []
        for instrument in self.instruments():
            entry = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
                "help": instrument.help,
            }
            if isinstance(instrument, Counter):
                entry["value"] = instrument.value
                counters.append(entry)
            elif isinstance(instrument, Gauge):
                entry["value"] = instrument.value
                gauges.append(entry)
            elif isinstance(instrument, Histogram):
                entry.update(
                    bounds=list(instrument.bounds),
                    counts=instrument.bucket_counts(),
                    sum=instrument.sum,
                    count=instrument.count,
                    min=instrument.min,
                    max=instrument.max,
                    p50=instrument.p50,
                    p95=instrument.p95,
                    p99=instrument.p99,
                )
                histograms.append(entry)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (e.g. a sidecar
        file written by a previous process) so exporters can re-render it."""
        registry = cls()
        for entry in data.get("counters", ()):  # type: ignore[union-attr]
            counter = registry.counter(
                entry["name"], labels=entry.get("labels"), help=entry.get("help", "")
            )
            counter.inc(float(entry.get("value", 0.0)))
        for entry in data.get("gauges", ()):  # type: ignore[union-attr]
            gauge = registry.gauge(
                entry["name"], labels=entry.get("labels"), help=entry.get("help", "")
            )
            gauge.set(float(entry.get("value", 0.0)))
        for entry in data.get("histograms", ()):  # type: ignore[union-attr]
            histogram = registry.histogram(
                entry["name"],
                labels=entry.get("labels"),
                help=entry.get("help", ""),
                buckets=entry["bounds"],
            )
            histogram._counts = [int(c) for c in entry["counts"]]
            histogram._sum = float(entry["sum"])
            histogram._count = int(entry["count"])
            histogram._min = (
                float(entry["min"]) if entry.get("min") is not None else math.inf
            )
            histogram._max = (
                float(entry["max"]) if entry.get("max") is not None else -math.inf
            )
        return registry

    def reset(self) -> None:
        """Drop every instrument and collector (test isolation)."""
        with self._lock:
            self._instruments.clear()
            self._collectors.clear()


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
