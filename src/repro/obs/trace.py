"""Span tracing: where does one query's time actually go?

The engine's :class:`~repro.core.engine.SearchReport` says *how much* time
the filter and refine phases took; a trace says *which* query, over *which*
attributes, touching *how many* tuples — and nests the phases inside the
query the way they executed.  Spans carry attributes (tid counts, bytes,
attribute ids), feed duration histograms into the metrics registry, and
can be written as JSON lines for offline analysis (``repro query --trace``).

Two ways to produce a span:

* :meth:`Tracer.span` — a context manager timing a live region
  (``with tracer.span("query", engine="iVA"):``); spans opened inside it
  become children.
* :meth:`Tracer.record` — a synthetic span for a *pre-measured* duration.
  The engine's filter and refine phases interleave (refinement happens
  "from time to time during the filtering process"), so their per-phase
  totals are accumulated by the engine and recorded as two child spans
  whose durations reconcile exactly with the report.

A :class:`SlowQueryLog` watches completed root ``query`` spans and emits a
JSON line through the ``repro.obs.slow_query`` logger for every query whose
modeled time crosses the threshold — the production "why was this one
slow" hook.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import IO, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "Span",
    "Tracer",
    "JsonlSpanSink",
    "SlowQueryLog",
    "get_tracer",
    "set_tracer",
]

#: Dedicated namespace so operators can route the slow-query stream to its
#: own handler/file without touching the rest of the library's logging.
SLOW_QUERY_LOGGER = "repro.obs.slow_query"

logger = logging.getLogger(__name__)


@dataclass
class Span:
    """One timed region: name, attributes, duration and children."""

    name: str
    attrs: dict = field(default_factory=dict)
    duration_ms: float = 0.0
    children: List["Span"] = field(default_factory=list)
    #: perf_counter at entry; None for synthetic (pre-measured) spans.
    _started: Optional[float] = None

    def child(self, name: str) -> Optional["Span"]:
        """First direct child with this name, or None."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def total_ms(self, name: str) -> float:
        """Summed duration of all direct children with this name."""
        return sum(s.duration_ms for s in self.children if s.name == name)

    def to_dict(self) -> dict:
        """JSON-able nested representation."""
        out = {"name": self.name, "duration_ms": self.duration_ms}
        if self.attrs:
            out["attrs"] = self.attrs
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class JsonlSpanSink:
    """Writes each completed root span as one JSON line."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._fh: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = destination
            self._owns = False
        self._lock = threading.Lock()
        self.spans_written = 0

    def write(self, span: Span) -> None:
        """Append one root span."""
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._fh.write(line + "\n")
            self.spans_written += 1

    def close(self) -> None:
        """Flush and (if we opened the file) close it."""
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class SlowQueryLog:
    """Threshold filter emitting JSON lines for slow root query spans.

    The comparison value is the span's ``modeled_ms`` attribute when
    present (the paper's modeled I/O + CPU time — the number every figure
    reports) and the measured wall duration otherwise.
    """

    def __init__(self, threshold_ms: float, span_name: str = "query") -> None:
        if threshold_ms < 0:
            raise ValueError("slow-query threshold must be non-negative")
        self.threshold_ms = threshold_ms
        self.span_name = span_name
        self._logger = logging.getLogger(SLOW_QUERY_LOGGER)
        self.emitted = 0

    def consider(self, span: Span) -> bool:
        """Log the span if it qualifies; True when a line was emitted."""
        if span.name != self.span_name:
            return False
        value = float(span.attrs.get("modeled_ms", span.duration_ms))
        if value < self.threshold_ms:
            return False
        payload = dict(span.to_dict(), slow_query_ms=value)
        self._logger.warning("%s", json.dumps(payload, sort_keys=True))
        self.emitted += 1
        return True


class Tracer:
    """Context-manager spans with a per-thread stack.

    Completed *root* spans are fanned out to the JSONL sink (if any), the
    slow-query log (if any), and a ``repro_span_duration_ms`` histogram in
    the registry, labelled by span name.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[JsonlSpanSink] = None,
        slow_query_log: Optional[SlowQueryLog] = None,
    ) -> None:
        self._registry = registry
        self.sink = sink
        self.slow_query_log = slow_query_log
        self._local = threading.local()

    @property
    def registry(self) -> MetricsRegistry:
        """The registry observations land in (default: process-global)."""
        return self._registry if self._registry is not None else get_registry()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs) -> "_SpanGuard":
        """Open a timed span; use as a context manager."""
        return _SpanGuard(self, Span(name=name, attrs=dict(attrs)))

    def attach(self, parent: Optional[Span]) -> "_AttachGuard":
        """Adopt *parent* — a span owned by another thread — as this
        thread's current span for the duration of the guard.

        Worker threads start with an empty thread-local stack, so any span
        they open becomes an orphan *root* (fanned out to the sink on its
        own) instead of nesting under the query that spawned the work.
        Wrapping the worker body in ``with tracer.attach(query_span):``
        makes spans opened inside it children of *parent*, so the trace
        shows the true query tree.

        The parent is only *borrowed*: closing the guard pops it from this
        thread's stack without finishing it — the owning thread still
        closes it normally.  Appending children to a foreign span is safe
        under the GIL (``list.append`` is atomic), provided the owner
        keeps the parent open until the workers are done — which the
        executor guarantees by joining workers inside the query span.

        ``attach(None)`` is a no-op guard, so call sites need no branch
        for the "no parent" case.
        """
        return _AttachGuard(self, parent)

    def record(self, name: str, duration_ms: float, **attrs) -> Span:
        """Attach a synthetic span with a pre-measured duration.

        Becomes a child of the currently open span, or a root span (fanned
        out to sink/registry) when none is open.
        """
        span = Span(name=name, attrs=dict(attrs), duration_ms=float(duration_ms))
        parent = self.current()
        if parent is not None:
            parent.children.append(span)
        else:
            self._finish_root(span)
        return span

    # ---------------------------------------------------------------- guts

    def _enter(self, span: Span) -> Span:
        span._started = time.perf_counter()
        self._stack().append(span)
        return span

    def _exit(self, span: Span) -> None:
        stack = self._stack()
        # Identity, not equality: Span is a dataclass, and two spans with
        # the same name/attrs would compare equal.
        if not any(s is span for s in stack):
            raise RuntimeError(f"span {span.name!r} closed out of order")
        # Unwind anything still open above *span* — e.g. a generator that
        # opened a span and was abandoned mid-iteration, or an inner guard
        # skipped by an exception path.  Closing them here (tagged
        # ``abandoned``) keeps the stack clean for the next query instead
        # of poisoning every later span with a stale parent.
        while stack[-1] is not span:
            orphan = stack.pop()
            if orphan._started is not None:
                orphan.duration_ms = (time.perf_counter() - orphan._started) * 1000.0
            orphan.attrs.setdefault("abandoned", True)
            span.children.append(orphan)
        stack.pop()
        if span._started is not None:
            span.duration_ms = (time.perf_counter() - span._started) * 1000.0
        if stack:
            stack[-1].children.append(span)
        else:
            self._finish_root(span)

    def _finish_root(self, span: Span) -> None:
        self.registry.histogram(
            "repro_span_duration_ms",
            labels={"span": span.name},
            help="Wall-clock duration of completed root spans.",
        ).observe(span.duration_ms)
        if self.sink is not None:
            self.sink.write(span)
        if self.slow_query_log is not None:
            self.slow_query_log.consider(span)


class _SpanGuard:
    """Context manager wrapping one span's open/close."""

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self._tracer._enter(self.span)

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._exit(self.span)
        return False


class _AttachGuard:
    """Borrows a foreign parent span onto this thread's stack.

    See :meth:`Tracer.attach`.  On exit the parent is popped *without*
    being finished (its owner does that); any span left open above it is
    unwound into the parent as ``abandoned`` so the borrow can never leak
    state into the worker thread's next task.
    """

    def __init__(self, tracer: Tracer, parent: Optional[Span]) -> None:
        self._tracer = tracer
        self._parent = parent

    def __enter__(self) -> Optional[Span]:
        if self._parent is not None:
            self._tracer._stack().append(self._parent)
        return self._parent

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._parent is None:
            return False
        stack = self._tracer._stack()
        while stack and stack[-1] is not self._parent:
            orphan = stack.pop()
            if orphan._started is not None:
                orphan.duration_ms = (time.perf_counter() - orphan._started) * 1000.0
            orphan.attrs.setdefault("abandoned", True)
            self._parent.children.append(orphan)
        if stack:
            stack.pop()  # the borrowed parent; its owner finishes it
        return False


_default_tracer = Tracer()
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global default tracer (no sink, default registry)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _default_tracer
    with _default_lock:
        previous = _default_tracer
        _default_tracer = tracer
    return previous
