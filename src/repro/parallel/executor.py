"""The parallel filter/refine executor (Algorithm 1, sharded).

Execution model
---------------

The filter phase is split into tid-range shards (:mod:`.shards`); a thread
pool scans them concurrently.  Each worker keeps a **local**
:class:`~repro.core.pool.ResultPool` that absorbs exact-distance shortcuts
without any lock traffic, prunes against both its local pool and a shared
monotonically-tightening global bound, and pushes surviving candidates
onto a bounded queue.  The calling thread is the single refiner: it drains
the queue — overlapping table-file random reads with the ongoing scan —
re-checks candidacy against the global pool, fetches and inserts.  When a
shard finishes, its local pool is merged into the global pool and the
shared bound tightens, so late shards inherit every earlier shard's
pruning power (the bound-tightening feedback hook).

Determinism
-----------

Results are bit-identical to the sequential path.  The pool's final
contents are the k smallest entries under the total order ``(distance,
tid)`` — a pure function of the inserted multiset (see
:mod:`repro.core.pool`) — and no true top-k member is ever pruned: bounds
only tighten, estimates never exceed actual distances, and every candidacy
check is tie-aware on tid.  Workers may refine *more* tuples than the
sequential scan (their bound lags the global pool), so cost counters can
differ; answers cannot.

Accounting
----------

Shards are assigned to workers statically — contiguous chunks, round
lengths differing by at most one — so the modeled latency is deterministic
and a worker's shards are adjacent tid ranges (its I/O channel continues
sequentially across its own shard boundaries).

Reports model the critical path, the convention the distributed layer
already uses: the filter phase costs its setup (attribute-list reads plus
the — normally cache-served — shard plan) plus the **slowest worker**
(modeled I/O summed over the worker's shards from a thread-local meter,
CPU via ``time.thread_time``, which is robust to GIL interleaving);
refine costs are the refiner thread's own meters.  Each worker scans
through its own disk I/O channel — the multi-queue-device model — so
concurrent sequential streams do not charge artificial inter-stream
seeks.

Observability
-------------

Every search emits through :mod:`repro.obs`: ``parallel.shard_scan`` and
``parallel.merge`` spans under the ``query`` span, per-worker shard-scan
histograms, a candidate-queue high-water gauge, and fallback counters.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import (
    FAIL_MODES,
    REFINE_BATCH,
    BoundEvaluator,
    QueryResult,
    SearchReport,
    observe_search,
    trace_phases,
)
from repro.core.iva_file import DELETED_PTR, IVAFile
from repro.core.kernel import BLOCK_TUPLES, KernelCache, QueryKernel
from repro.core.pool import ResultPool
from repro.errors import DeadlineExceeded, ParallelError
from repro.metrics.distance import DistanceFunction
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.profile import ProfileCollector
from repro.obs.trace import Span, Tracer, get_tracer
from repro.parallel.config import ExecutorConfig
from repro.parallel.shards import ShardPlanner, ShardRange
from repro.query import Query


class ParallelExecutionError(ParallelError):
    """The worker pool failed to start or a shard died mid-scan.

    Engines catch this and fall back to the sequential path when
    ``ExecutorConfig.fallback`` is set.  When a shard died, the failing
    shard's context rides along: ``shard`` (its index), ``worker`` (the
    thread label), ``tid_range`` (the tids it covered), and the original
    worker exception as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: Optional[int] = None,
        worker: Optional[str] = None,
        tid_range: Optional[Tuple[int, int]] = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.worker = worker
        self.tid_range = tid_range


@dataclass
class ParallelSearchReport(SearchReport):
    """A :class:`SearchReport` plus the parallel execution breakdown."""

    #: Worker threads the pool ran with.
    workers: int = 0
    #: Shards the scan was split into.
    shards: int = 0
    #: Modeled I/O of the planning pass charged to this query (0 when the
    #: plan was served from cache).
    planning_io_ms: float = 0.0
    #: Per-shard modeled scan I/O milliseconds (shard order).
    shard_io_ms: List[float] = field(default_factory=list)
    #: Per-shard scan CPU seconds (``time.thread_time`` per worker).
    shard_cpu_s: List[float] = field(default_factory=list)
    #: Local-pool entries admitted into the global pool at merge time.
    merged_candidates: int = 0
    #: High-water mark of the bounded candidate queue.
    max_queue_depth: int = 0


class SharedBound:
    """A monotonically tightening ``(distance, tid)`` pruning bound.

    Workers read it lock-free (a single attribute load is atomic under the
    GIL); :meth:`tighten` takes a lock only to keep updates monotone.
    ``None`` means the global pool is not yet full — nothing can be pruned.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value: Optional[Tuple[float, int]] = None
        self._lock = threading.Lock()

    def get(self) -> Optional[Tuple[float, int]]:
        """The current bound, or None while the global pool is not full."""
        return self._value

    def tighten(self, bound: Tuple[float, int]) -> None:
        """Lower the bound; looser values than the current one are ignored."""
        with self._lock:
            current = self._value
            if current is None or bound < current:
                self._value = bound


@dataclass
class _ShardStats:
    """What one worker hands back alongside its local pools."""

    shard: int
    worker: str = ""
    tuples: int = 0
    exact_shortcuts: List[int] = field(default_factory=list)
    io_ms: float = 0.0
    pages: int = 0
    cpu_s: float = 0.0
    error: Optional[BaseException] = None
    #: Vector-list segments decoded columnar (v3 kernel shards only).
    segments: int = 0
    #: The scan loop saw the abort flag and stopped early.  In degrade
    #: mode nothing but a deadline cut sets abort, so ``aborted`` there
    #: means "cut by the deadline" and the shard's tail was not scanned.
    aborted: bool = False


@dataclass
class _ShardDone:
    """Queue sentinel: a shard finished (or died — see ``stats.error``)."""

    stats: _ShardStats
    local_pools: List[ResultPool]
    #: Shard-local profile collectors (one per query), present only when
    #: the run profiles; absorbed into the per-query masters at merge time.
    profiles: Optional[List[ProfileCollector]] = None


@dataclass
class _QueryCtx:
    """Per-query state shared between the refiner and the workers."""

    query: Query
    evaluator: BoundEvaluator
    shared: SharedBound
    #: Compiled block-filter kernel, set when the run uses the block
    #: kernel; one compiled artifact per query, shared by ALL shard
    #: workers (the lazily-growing lookup tables are filled with values
    #: from pure functions, so concurrent memoisation is benign — two
    #: threads can only ever write the same entry).
    kernel: Optional[QueryKernel] = None


@dataclass
class _RunResult:
    """Everything :meth:`ParallelScanExecutor.run` measured."""

    pools: List[ResultPool]
    workers: int = 0
    shards: int = 0
    planning_io_ms: float = 0.0
    shard_stats: List[_ShardStats] = field(default_factory=list)
    tuples_scanned: int = 0
    exact_shortcuts: List[int] = field(default_factory=list)
    table_accesses: List[int] = field(default_factory=list)
    refine_io_ms: float = 0.0
    refine_cpu_s: float = 0.0
    merge_cpu_s: float = 0.0
    setup_cpu_s: float = 0.0
    merged_candidates: int = 0
    max_queue_depth: int = 0
    #: Vector-list segments decoded columnar across all shards (v3 only).
    segments_total: int = 0
    #: Degradation account (``fail_mode="degrade"`` only): shards whose
    #: scan could not be recovered, and the tid ranges they covered.
    degraded: bool = False
    lost_shards: List[int] = field(default_factory=list)
    lost_tid_ranges: List[Tuple[int, int]] = field(default_factory=list)
    recovered_shards: int = 0
    #: The run's deadline expired; aborted shards are accounted lost.
    deadline_hit: bool = False
    #: Per-query master profile collectors (profiled runs only).
    profiles: Optional[List[ProfileCollector]] = None


class ParallelScanExecutor:
    """Runs one or many queries' Algorithm 1 over a sharded scan.

    One instance per (table, index) pair; it owns the shard-plan cache, so
    keep it across searches (the engines do).  ``run`` is not reentrant —
    one search at a time per executor.
    """

    def __init__(
        self,
        table,
        index: IVAFile,
        config: ExecutorConfig,
        planner: Optional[ShardPlanner] = None,
    ) -> None:
        self.table = table
        self.index = index
        self.config = config
        #: *planner* lets long-lived callers (the serving daemon) share one
        #: plan cache across per-request executors; attached indexes have
        #: no sync directory, so a fresh planner would pay a charged plan
        #: walk per request.
        self.planner = planner if planner is not None else ShardPlanner(index)
        # Run-scoped state (``run`` is not reentrant): the tracer and the
        # query span workers attach to, and the profiling configuration.
        self._run_tracer: Tracer = get_tracer()
        self._run_parent: Optional[Span] = None
        self._run_profile: bool = False
        self._run_position: Optional[Dict[int, int]] = None
        self._run_profiles: Optional[List[ProfileCollector]] = None
        self._run_kernel: str = "scalar"

    # ------------------------------------------------------------------ run

    def run(
        self,
        queries: Sequence[Query],
        k: int,
        dist: DistanceFunction,
        *,
        skip_exact: bool = True,
        kernel: str = "scalar",
        fail_mode: str = "raise",
        tracer: Optional[Tracer] = None,
        parent_span: Optional[Span] = None,
        profile: bool = False,
        deadline: Optional[float] = None,
        end_element: Optional[int] = None,
        kernel_cache: Optional[KernelCache] = None,
    ) -> _RunResult:
        """Execute the sharded scan; raises :class:`ParallelExecutionError`
        when the pool cannot start or a worker dies.

        *deadline* (absolute ``time.perf_counter()``) cuts the run short:
        workers abort at the next tuple/block boundary, candidates already
        enqueued are still refined (never a silently-wrong full answer),
        and aborted shards are accounted as lost tid ranges.  In
        ``"raise"`` mode an expired deadline raises
        :class:`~repro.errors.DeadlineExceeded` instead.  *end_element*
        bounds the scan to a snapshot watermark; *kernel_cache* supplies a
        shared compiled-term cache for the block kernel.

        *kernel* selects the filter strategy: ``"block"`` compiles one
        :class:`QueryKernel` per query up front — sharing gram sets, masks
        and lookup tables through one :class:`KernelCache` across every
        query *and* every shard worker — and shard workers then scan
        block-at-a-time.  ``"v3"`` additionally decodes whole segments
        columnar (``decode_segment``/``evaluate_segments``) and batches the
        refiner's table reads by page.  Answers are bit-identical in every
        mode.

        *fail_mode* picks the shard-failure policy: ``"raise"`` aborts
        the run on the first dead shard (sequential-fallback semantics);
        ``"degrade"`` walks the recovery ladder — retry the shard, then
        re-scan it sequentially without the kernel, and only then record
        it lost — and always returns a result, flagged ``degraded`` with
        the lost tid ranges when a shard could not be saved.

        *tracer*/*parent_span* propagate span context into the shard
        workers: each shard scan runs inside a live ``parallel.shard_scan``
        span attached under *parent_span* (the caller's open ``query``
        span), so traces show the true query tree instead of orphan roots.
        *profile* gives every shard worker per-query
        :class:`ProfileCollector`\\ s, merged into ``result.profiles``.
        """
        if fail_mode not in FAIL_MODES:
            raise ParallelError(
                f"fail_mode must be one of {FAIL_MODES}, got {fail_mode!r}"
            )
        attr_ids = tuple(sorted({t.attr.attr_id for q in queries for t in q.terms}))
        position = {attr_id: i for i, attr_id in enumerate(attr_ids)}
        if len(queries) == 1 and attr_ids == queries[0].attribute_ids():
            position_map = None  # payloads align 1:1 with the query's terms
        else:
            position_map = position
        self._run_tracer = tracer if tracer is not None else get_tracer()
        self._run_parent = parent_span
        self._run_profile = profile
        self._run_position = position_map
        self._run_profiles = (
            [ProfileCollector.for_query(q, position_map) for q in queries]
            if profile
            else None
        )
        self._run_kernel = kernel

        result = _RunResult(pools=[ResultPool(k) for _ in queries])
        result.exact_shortcuts = [0] * len(queries)
        result.table_accesses = [0] * len(queries)
        disk = self.table.disk

        # Per-query setup: Algorithm 1's attribute-list reads plus the
        # (possibly cached) shard plan.  Charged to the filter phase.
        setup_cpu0 = time.thread_time()
        with disk.metered() as setup_meter:
            self.index.read_attr_elements(attr_ids)
            visible = self.index.tuple_elements
            if end_element is not None:
                visible = min(visible, end_element)
            shard_count = self.config.shard_count(visible)
            shards = self.planner.plan(attr_ids, shard_count, end_element)
        result.planning_io_ms = setup_meter.io_ms
        result.setup_cpu_s = time.thread_time() - setup_cpu0
        result.shards = len(shards)
        workers = min(self.config.effective_workers(), len(shards))
        result.workers = workers

        contexts = [
            _QueryCtx(
                query=query,
                evaluator=BoundEvaluator(self.index, query, dist, position_map),
                shared=SharedBound(),
            )
            for query in queries
        ]
        if kernel in ("block", "v3"):
            compile_cpu0 = time.thread_time()
            shared_terms = kernel_cache if kernel_cache is not None else KernelCache()
            for ctx in contexts:
                ctx.kernel = QueryKernel.compile(
                    self.index, ctx.query, dist, position_map, cache=shared_terms
                )
            # Compilation happens once on the caller, before any worker
            # starts; charge it to the query's setup cost.
            result.setup_cpu_s += time.thread_time() - compile_cpu0
        out_queue: "queue_module.Queue" = queue_module.Queue(
            maxsize=self.config.queue_depth
        )
        abort = threading.Event()

        try:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-parallel"
            )
        except Exception as exc:  # pool failed to start
            raise ParallelExecutionError(f"worker pool failed to start: {exc}") from exc

        # Static contiguous assignment: worker w gets shards
        # [w·chunk, …) — deterministic critical path, adjacent tid ranges.
        chunks: List[List[ShardRange]] = []
        base, extra = divmod(len(shards), workers)
        cursor = 0
        for w in range(workers):
            size = base + (1 if w < extra else 0)
            chunks.append(shards[cursor : cursor + size])
            cursor += size

        # Tids already refined per query — maintained only in degrade
        # mode, where a recovered shard's re-scan may re-emit candidates
        # the failed scan already delivered (a duplicate insert would
        # corrupt the top-k multiset).
        seen: Optional[List[set]] = (
            [set() for _ in queries] if fail_mode == "degrade" else None
        )
        records: Dict[int, object] = {}
        try:
            try:
                for w, chunk in enumerate(chunks):
                    pool.submit(
                        self._run_worker,
                        w,
                        chunk,
                        attr_ids,
                        contexts,
                        k,
                        dist,
                        skip_exact,
                        out_queue,
                        abort,
                    )
            except Exception as exc:
                abort.set()
                raise ParallelExecutionError(
                    f"worker pool rejected shard submission: {exc}"
                ) from exc
            failures = self._refine_loop(
                contexts,
                dist,
                skip_exact,
                out_queue,
                abort,
                result,
                records,
                seen,
                fail_mode,
                deadline,
            )
        finally:
            abort.set()
            pool.shutdown(wait=True)

        aborted = [s for s in result.shard_stats if s.aborted]
        if result.deadline_hit and not aborted and not failures:
            # The deadline fired after every shard had already delivered:
            # the answer is complete, so don't degrade it.
            result.deadline_hit = False
        if result.deadline_hit:
            if fail_mode == "raise":
                raise DeadlineExceeded(
                    f"parallel scan cut short by deadline "
                    f"({len(aborted)} shards aborted, "
                    f"{len(failures)} shard errors pending)"
                )
            # Degrade: aborted shards' unscanned tails — and any shards
            # that died outright — are accounted lost without walking the
            # recovery ladder (re-scanning against a blown budget only
            # makes the overrun worse).  The whole-shard tid range is a
            # conservative overcount of what was actually missed.
            by_index = {shard.index: shard for shard in shards}
            result.degraded = True
            for stats in aborted:
                result.lost_shards.append(stats.shard)
                result.lost_tid_ranges.append(
                    self._shard_tid_range(by_index.get(stats.shard))
                )
            for failure in failures:
                result.lost_shards.append(failure.shard)
                result.lost_tid_ranges.append(
                    self._shard_tid_range(by_index.get(failure.shard))
                )
            result.lost_shards.sort()
        elif failures:
            by_index = {shard.index: shard for shard in shards}
            if fail_mode == "raise":
                failure = failures[0]
                tid_range = self._shard_tid_range(by_index.get(failure.shard))
                raise ParallelExecutionError(
                    f"shard {failure.shard} failed on worker {failure.worker} "
                    f"(tids {tid_range[0]}..{tid_range[1]}): {failure.error}",
                    shard=failure.shard,
                    worker=failure.worker,
                    tid_range=tid_range,
                ) from failure.error
            self._recover_shards(
                failures,
                by_index,
                attr_ids,
                contexts,
                k,
                dist,
                skip_exact,
                result,
                records,
                seen,
            )
        result.profiles = self._run_profiles
        return result

    # -------------------------------------------------------------- workers

    def _run_worker(
        self,
        worker_idx: int,
        shard_chunk: List[ShardRange],
        attr_ids: Tuple[int, ...],
        contexts: List[_QueryCtx],
        k: int,
        dist: DistanceFunction,
        skip_exact: bool,
        out_queue: "queue_module.Queue",
        abort: threading.Event,
    ) -> None:
        """Scan this worker's contiguous shard chunk, one shard at a time.

        Per-shard granularity is kept so each finished shard's local pool
        merges (and tightens the shared bound) while the worker's next
        shard is still scanning.
        """
        label = f"w{worker_idx}"
        for shard in shard_chunk:
            self._scan_shard(
                shard, label, attr_ids, contexts, k, dist, skip_exact, out_queue, abort
            )

    def _scan_shard(
        self,
        shard: ShardRange,
        worker: str,
        attr_ids: Tuple[int, ...],
        contexts: List[_QueryCtx],
        k: int,
        dist: DistanceFunction,
        skip_exact: bool,
        out_queue: "queue_module.Queue",
        abort: threading.Event,
    ) -> None:
        """Scan one shard; runs on a worker thread.

        The scan body executes inside a live ``parallel.shard_scan`` span
        attached under the run's ``query`` span (see
        :meth:`~repro.obs.trace.Tracer.attach`), so worker spans — and any
        ``disk.read``/resilience spans they open — nest in the query tree
        instead of becoming orphan roots on the worker's fresh stack.

        Always enqueues a :class:`_ShardDone` sentinel last — the refiner
        counts sentinels to know the queue is fully drained (FIFO order
        guarantees every candidate this worker produced precedes it).
        """
        stats = _ShardStats(
            shard=shard.index,
            worker=worker,
            exact_shortcuts=[0] * len(contexts),
        )
        local_pools = [ResultPool(k) for _ in contexts]
        collectors: Optional[List[ProfileCollector]] = None
        if self._run_profile:
            collectors = [
                ProfileCollector.for_query(ctx.query, self._run_position)
                for ctx in contexts
            ]
        tracer = self._run_tracer
        try:
            with tracer.attach(self._run_parent):
                with tracer.span(
                    "parallel.shard_scan", shard=shard.index, worker=worker
                ) as span:
                    self._scan_shard_body(
                        shard,
                        worker,
                        attr_ids,
                        contexts,
                        dist,
                        skip_exact,
                        out_queue,
                        abort,
                        stats,
                        local_pools,
                        collectors,
                    )
                    span.attrs["io_ms"] = stats.io_ms
                    span.attrs["tuples"] = stats.tuples
                    span.attrs["cpu_ms"] = stats.cpu_s * 1000.0
        except BaseException as exc:  # noqa: BLE001 - handed to the refiner
            stats.error = exc
        finally:
            out_queue.put(
                _ShardDone(stats=stats, local_pools=local_pools, profiles=collectors)
            )

    def _scan_shard_body(
        self,
        shard: ShardRange,
        worker: str,
        attr_ids: Tuple[int, ...],
        contexts: List[_QueryCtx],
        dist: DistanceFunction,
        skip_exact: bool,
        out_queue: "queue_module.Queue",
        abort: threading.Event,
        stats: _ShardStats,
        local_pools: List[ResultPool],
        collectors: Optional[List[ProfileCollector]],
    ) -> None:
        """The metered scan loop of one shard (scalar or block kernel)."""
        disk = self.table.disk
        batch = len(contexts) > 1
        block = contexts[0].kernel is not None if contexts else False
        with disk.io_channel(f"parallel-{worker}"), disk.metered() as meter:
            cpu0 = time.thread_time()
            scanners = [
                self.index.make_scanner(attr_id, start=shard.checkpoints[attr_id])
                for attr_id in attr_ids
            ]
            if block:
                self._scan_shard_blocks(
                    shard,
                    scanners,
                    contexts,
                    skip_exact,
                    out_queue,
                    abort,
                    stats,
                    local_pools,
                    collectors,
                )
            else:
                for tid, ptr in self.index.tuples.scan_range(
                    shard.start_element, shard.end_element
                ):
                    if abort.is_set():
                        stats.aborted = True
                        break
                    payloads = [scanner.move_to(tid) for scanner in scanners]
                    if collectors is not None:
                        for collector in collectors:
                            collector.on_payloads(payloads)
                    if ptr == DELETED_PTR:
                        continue
                    stats.tuples += 1
                    cache: Optional[dict] = {} if batch else None
                    for qi, ctx in enumerate(contexts):
                        diffs, exact = ctx.evaluator.evaluate(payloads, cache)
                        estimated = dist.combine_bounds(ctx.query, diffs)
                        if exact and skip_exact:
                            local_pools[qi].insert(tid, estimated)
                            stats.exact_shortcuts[qi] += 1
                            if collectors is not None:
                                collectors[qi].on_exact()
                            continue
                        bound = ctx.shared.get()
                        if bound is not None and not (estimated, tid) < bound:
                            if collectors is not None:
                                collectors[qi].on_pruned()
                            continue
                        if not local_pools[qi].is_candidate(estimated, tid):
                            if collectors is not None:
                                collectors[qi].on_pruned()
                            continue
                        if collectors is not None:
                            collectors[qi].on_candidate()
                        out_queue.put((qi, tid, estimated))
            stats.cpu_s = time.thread_time() - cpu0
        stats.io_ms = meter.io_ms
        stats.pages = meter.pages

    def _scan_shard_blocks(
        self,
        shard: ShardRange,
        scanners: List,
        contexts: List[_QueryCtx],
        skip_exact: bool,
        out_queue: "queue_module.Queue",
        abort: threading.Event,
        stats: _ShardStats,
        local_pools: List[ResultPool],
        collectors: Optional[List[ProfileCollector]] = None,
    ) -> None:
        """Block-kernel shard scan: same decisions, block-at-a-time decode.

        Per-tuple decisions run in the scalar path's exact order (tid
        outer, query inner), so the candidate stream and pool evolution
        match; only the decode/evaluate granularity differs.
        """
        batch = len(contexts) > 1
        use_v3 = self._run_kernel == "v3"
        for tids, ptrs in self.index.tuples.scan_range_blocks(
            shard.start_element, shard.end_element, BLOCK_TUPLES
        ):
            if abort.is_set():
                stats.aborted = True
                break
            count = len(tids)
            block_cache: Optional[dict] = {} if batch else None
            if use_v3:
                segments = [scanner.decode_segment(tids) for scanner in scanners]
                stats.segments += len(segments)
                if collectors is not None:
                    for collector in collectors:
                        collector.on_segments(segments, count)
                evaluated = [
                    ctx.kernel.evaluate_segments(segments, count, block_cache)
                    for ctx in contexts
                ]
            else:
                columns = [scanner.move_block(tids) for scanner in scanners]
                if collectors is not None:
                    for collector in collectors:
                        collector.on_block(columns, count)
                evaluated = [
                    ctx.kernel.evaluate_block(columns, count, block_cache)
                    for ctx in contexts
                ]
            for i in range(count):
                if ptrs[i] == DELETED_PTR:
                    continue
                tid = tids[i]
                stats.tuples += 1
                for qi, ctx in enumerate(contexts):
                    estimated = evaluated[qi][0][i]
                    exact = evaluated[qi][1][i]
                    if exact and skip_exact:
                        local_pools[qi].insert(tid, estimated)
                        stats.exact_shortcuts[qi] += 1
                        if collectors is not None:
                            collectors[qi].on_exact()
                        continue
                    bound = ctx.shared.get()
                    if bound is not None and not (estimated, tid) < bound:
                        if collectors is not None:
                            collectors[qi].on_pruned()
                        continue
                    if not local_pools[qi].is_candidate(estimated, tid):
                        if collectors is not None:
                            collectors[qi].on_pruned()
                        continue
                    if collectors is not None:
                        collectors[qi].on_candidate()
                    out_queue.put((qi, tid, estimated))

    # -------------------------------------------------------------- refiner

    def _refine_loop(
        self,
        contexts: List[_QueryCtx],
        dist: DistanceFunction,
        skip_exact: bool,
        out_queue: "queue_module.Queue",
        abort: threading.Event,
        result: _RunResult,
        records: Dict[int, object],
        seen: Optional[List[set]],
        fail_mode: str,
        deadline: Optional[float] = None,
    ) -> List[_ShardStats]:
        """Drain candidates and sentinels; runs on the calling thread.

        Returns the stats of every shard that died.  In ``"raise"`` mode
        the first death aborts the siblings and the rest of the queue is
        merely drained; in ``"degrade"`` mode siblings keep scanning and
        merging normally so recovery only has to re-cover the dead shards.

        The refiner also enforces *deadline*: it waits on the queue with a
        bounded timeout so it wakes even when no candidates flow, and on
        expiry flips the abort flag.  Candidates already enqueued are still
        refined — they came from scanned ranges, so refining them can only
        improve the partial answer.

        Under the v3 kernel the refiner drains candidates greedily into
        batches of up to :data:`~repro.core.engine.REFINE_BATCH` and sorts
        each batch by the candidates' base-table file offsets before
        fetching, so random table reads issue in page order.  Sentinels met
        mid-drain merge immediately — tightening the bound *earlier* than
        strict FIFO order would only prunes more, and every fetch re-checks
        candidacy, so the answer multiset is unchanged.
        """
        pools = result.pools
        pending = result.shards
        failures: List[_ShardStats] = []
        batched = self._run_kernel == "v3"
        locate = self.table.locate

        def handle_done(item: _ShardDone) -> None:
            nonlocal pending
            pending -= 1
            if item.stats.error is not None:
                failures.append(item.stats)
                if fail_mode == "raise":
                    abort.set()
                return
            if failures and fail_mode == "raise":
                return  # draining after a sibling shard died
            result.shard_stats.append(item.stats)
            result.tuples_scanned += item.stats.tuples
            result.segments_total += item.stats.segments
            if self._run_profiles is not None and item.profiles is not None:
                for qi, shard_profile in enumerate(item.profiles):
                    self._run_profiles[qi].absorb(shard_profile)
            merge_cpu0 = time.thread_time()
            for qi, local in enumerate(item.local_pools):
                result.exact_shortcuts[qi] += item.stats.exact_shortcuts[qi]
                result.merged_candidates += pools[qi].merge_from(local)
                self._tighten(contexts[qi], pools[qi])
            result.merge_cpu_s += time.thread_time() - merge_cpu0

        while pending:
            if deadline is not None and not result.deadline_hit:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    result.deadline_hit = True
                    abort.set()
                    item = out_queue.get()
                else:
                    try:
                        item = out_queue.get(timeout=remaining)
                    except queue_module.Empty:
                        continue  # re-check the deadline and wait again
            else:
                item = out_queue.get()
            depth = out_queue.qsize()
            if depth > result.max_queue_depth:
                result.max_queue_depth = depth
            if isinstance(item, _ShardDone):
                handle_done(item)
                continue
            if failures and fail_mode == "raise":
                continue
            if not batched:
                qi, tid, estimated = item
                self._refine_candidate(
                    qi, tid, estimated, contexts, dist, result, records, seen
                )
                continue
            # v3: drain greedily without blocking, then fetch page-ordered.
            batch_items: List[Tuple[int, int, float]] = [item]
            while len(batch_items) < REFINE_BATCH:
                try:
                    extra = out_queue.get_nowait()
                except queue_module.Empty:
                    break
                if isinstance(extra, _ShardDone):
                    handle_done(extra)
                    continue
                if failures and fail_mode == "raise":
                    continue
                batch_items.append(extra)
            batch_items.sort(key=lambda entry: locate(entry[1])[0])
            for qi, tid, estimated in batch_items:
                self._refine_candidate(
                    qi, tid, estimated, contexts, dist, result, records, seen
                )
        result.shard_stats.sort(key=lambda s: s.shard)
        failures.sort(key=lambda s: s.shard)
        return failures

    def _refine_candidate(
        self,
        qi: int,
        tid: int,
        estimated: float,
        contexts: List[_QueryCtx],
        dist: DistanceFunction,
        result: _RunResult,
        records: Dict[int, object],
        seen: Optional[List[set]],
    ) -> None:
        """Re-check candidacy, fetch the tuple (cached), insert, tighten."""
        pool = result.pools[qi]
        profiles = self._run_profiles
        if seen is not None and tid in seen[qi]:
            if profiles is not None:
                profiles[qi].on_dedup_skipped()
            return
        if not pool.is_candidate(estimated, tid):
            if profiles is not None:
                profiles[qi].on_late_pruned()
            return
        cpu0 = time.thread_time()
        record = records.get(tid)
        if record is None:
            with self.table.disk.metered() as meter:
                record = self.table.read(tid)
            records[tid] = record
            result.refine_io_ms += meter.io_ms
        actual = dist.actual(contexts[qi].query, record)
        pool.insert(tid, actual)
        self._tighten(contexts[qi], pool)
        result.refine_cpu_s += time.thread_time() - cpu0
        result.table_accesses[qi] += 1
        if profiles is not None:
            profiles[qi].on_refined(estimated, actual)
        if seen is not None:
            seen[qi].add(tid)

    @staticmethod
    def _tighten(ctx: _QueryCtx, pool: ResultPool) -> None:
        if pool.is_full():
            worst = pool.worst()
            if worst is not None:
                ctx.shared.tighten(worst)

    # ------------------------------------------------------------- recovery

    def _recover_shards(
        self,
        failures: List[_ShardStats],
        by_index: Dict[int, ShardRange],
        attr_ids: Tuple[int, ...],
        contexts: List[_QueryCtx],
        k: int,
        dist: DistanceFunction,
        skip_exact: bool,
        result: _RunResult,
        records: Dict[int, object],
        seen: Optional[List[set]],
    ) -> None:
        """The degrade-mode ladder: retry → sequential re-scan → lost.

        Runs inline on the calling thread after every surviving shard has
        merged, so recovered shards inherit the fully tightened bound.
        """
        tracer = get_tracer()
        for failure in failures:
            shard = by_index.get(failure.shard)
            wall0 = time.perf_counter()
            outcome = "retried"
            ok = shard is not None and self._retry_shard(
                shard, attr_ids, contexts, k, dist, skip_exact, result, records, seen
            )
            if not ok and shard is not None:
                outcome = "sequential"
                ok = self._rescan_shard_sequential(
                    shard, attr_ids, contexts, dist, skip_exact, result, records, seen
                )
            if ok:
                result.recovered_shards += 1
            else:
                outcome = "lost"
                result.degraded = True
                result.lost_shards.append(failure.shard)
                result.lost_tid_ranges.append(self._shard_tid_range(shard))
            tracer.record(
                "resilience.shard_fallback",
                (time.perf_counter() - wall0) * 1000.0,
                shard=failure.shard,
                worker=failure.worker,
                outcome=outcome,
                error=type(failure.error).__name__ if failure.error else "",
            )

    def _retry_shard(
        self,
        shard: ShardRange,
        attr_ids: Tuple[int, ...],
        contexts: List[_QueryCtx],
        k: int,
        dist: DistanceFunction,
        skip_exact: bool,
        result: _RunResult,
        records: Dict[int, object],
        seen: Optional[List[set]],
    ) -> bool:
        """Re-run the shard's normal scan once (same kernel), inline.

        Uses an unbounded private queue — there is no concurrent refiner
        to drain it — and applies candidates only if the scan finished
        cleanly, so a second failure leaves no partial state behind.
        """
        retry_queue: "queue_module.Queue" = queue_module.Queue()
        self._scan_shard(
            shard,
            "retry",
            attr_ids,
            contexts,
            k,
            dist,
            skip_exact,
            retry_queue,
            threading.Event(),
        )
        items: List[Tuple[int, int, float]] = []
        done: Optional[_ShardDone] = None
        while True:
            item = retry_queue.get_nowait()
            if isinstance(item, _ShardDone):
                done = item
                break
            items.append(item)
        if done is None or done.stats.error is not None:
            return False
        if self._run_profiles is not None and done.profiles is not None:
            for qi, shard_profile in enumerate(done.profiles):
                self._run_profiles[qi].absorb(shard_profile)
        for qi, tid, estimated in items:
            self._refine_candidate(
                qi, tid, estimated, contexts, dist, result, records, seen
            )
        result.shard_stats.append(done.stats)
        result.shard_stats.sort(key=lambda s: s.shard)
        result.tuples_scanned += done.stats.tuples
        result.segments_total += done.stats.segments
        for qi, local in enumerate(done.local_pools):
            result.exact_shortcuts[qi] += done.stats.exact_shortcuts[qi]
            result.merged_candidates += result.pools[qi].merge_from(local)
            self._tighten(contexts[qi], result.pools[qi])
        return True

    def _rescan_shard_sequential(
        self,
        shard: ShardRange,
        attr_ids: Tuple[int, ...],
        contexts: List[_QueryCtx],
        dist: DistanceFunction,
        skip_exact: bool,
        result: _RunResult,
        records: Dict[int, object],
        seen: Optional[List[set]],
    ) -> bool:
        """Last resort before declaring the shard lost: a plain scalar
        re-scan with fresh scanners and inline refinement — a different
        code path than the failed one (no kernel, no queue, no worker
        thread), in case those were implicated.
        """
        batch = len(contexts) > 1
        profiles = self._run_profiles
        try:
            scanners = [
                self.index.make_scanner(attr_id, start=shard.checkpoints[attr_id])
                for attr_id in attr_ids
            ]
            for tid, ptr in self.index.tuples.scan_range(
                shard.start_element, shard.end_element
            ):
                payloads = [scanner.move_to(tid) for scanner in scanners]
                if profiles is not None:
                    for profile in profiles:
                        profile.on_payloads(payloads)
                if ptr == DELETED_PTR:
                    continue
                result.tuples_scanned += 1
                cache: Optional[dict] = {} if batch else None
                for qi, ctx in enumerate(contexts):
                    diffs, exact = ctx.evaluator.evaluate(payloads, cache)
                    estimated = dist.combine_bounds(ctx.query, diffs)
                    if exact and skip_exact:
                        result.pools[qi].insert(tid, estimated)
                        result.exact_shortcuts[qi] += 1
                        self._tighten(ctx, result.pools[qi])
                        if profiles is not None:
                            profiles[qi].on_exact()
                        continue
                    # The re-scan has no local pool to prune against;
                    # every non-exact tuple goes straight to the refiner,
                    # which late-prunes or deduplicates it.
                    if profiles is not None:
                        profiles[qi].on_candidate()
                    self._refine_candidate(
                        qi, tid, estimated, contexts, dist, result, records, seen
                    )
            return True
        except Exception:
            return False

    def _shard_tid_range(self, shard: Optional[ShardRange]) -> Tuple[int, int]:
        """Inclusive (first, last) tids a shard covered; (-1, -1) unknown."""
        if shard is None or shard.start_element >= shard.end_element:
            return (-1, -1)
        try:
            tids = self.index.tuples.element_tids()
        except Exception:
            return (-1, -1)
        if shard.start_element >= len(tids):
            return (-1, -1)
        last = min(shard.end_element, len(tids)) - 1
        return (tids[shard.start_element], tids[last])


# ------------------------------------------------------------------ facades


def _runner_for(engine_like, index: IVAFile, config: ExecutorConfig) -> ParallelScanExecutor:
    """The engine's cached executor (rebuilt if index/config changed)."""
    runner = getattr(engine_like, "_parallel_runner", None)
    if (
        runner is None
        or runner.index is not index
        or runner.config is not config
        or runner.table is not engine_like.table
    ):
        runner = ParallelScanExecutor(
            engine_like.table,
            index,
            config,
            planner=getattr(engine_like, "shard_planner", None),
        )
        engine_like._parallel_runner = runner
    return runner


def _emit_parallel_obs(
    registry: MetricsRegistry,
    tracer: Tracer,
    engine_name: str,
    run: _RunResult,
) -> None:
    """Spans + metrics for one parallel run (called inside the query span).

    ``parallel.shard_scan`` spans are no longer synthesized here: shard
    workers open them live (attached under the query span) so the trace
    shows the real tree; this hook only lands the aggregate metrics.
    """
    labels = {"engine": engine_name}
    for stats in run.shard_stats:
        registry.histogram(
            "repro_parallel_shard_scan_ms",
            labels={"engine": engine_name, "worker": stats.worker},
            help="Modeled per-shard scan time (I/O + CPU) by worker thread.",
        ).observe(stats.io_ms + stats.cpu_s * 1000.0)
    tracer.record(
        "parallel.merge",
        run.merge_cpu_s * 1000.0,
        shards=run.shards,
        admitted=run.merged_candidates,
    )
    registry.counter(
        "repro_parallel_searches_total",
        labels=labels,
        help="Searches executed by the parallel scan executor.",
    ).inc()
    if run.segments_total:
        registry.counter(
            "repro_kernel_segments_total",
            labels=labels,
            help="Vector-list segments decoded columnar by the v3 kernel.",
        ).inc(run.segments_total)
    registry.gauge(
        "repro_parallel_queue_depth",
        labels=labels,
        help="Candidate-queue high-water mark of the last parallel search.",
    ).set(run.max_queue_depth)
    registry.histogram(
        "repro_parallel_merge_ms",
        labels=labels,
        help="CPU time merging shard-local pools into the global pool.",
    ).observe(run.merge_cpu_s * 1000.0)


def _shard_rows(run: _RunResult) -> List[dict]:
    """Per-shard attribution rows for the EXPLAIN ANALYZE artifact."""
    return [
        {
            "shard": stats.shard,
            "worker": stats.worker,
            "tuples": stats.tuples,
            "io_ms": stats.io_ms,
            "cpu_ms": stats.cpu_s * 1000.0,
        }
        for stats in run.shard_stats
    ]


def _fill_report(report: ParallelSearchReport, run: _RunResult) -> None:
    """Critical-path cost model: filter = setup + slowest worker.

    A worker runs its shards serially, so its cost is the *sum* over its
    shards; workers run concurrently, so the phase costs the maximum.
    """
    per_worker_io: Dict[str, float] = {}
    per_worker_cpu: Dict[str, float] = {}
    for stats in run.shard_stats:
        per_worker_io[stats.worker] = per_worker_io.get(stats.worker, 0.0) + stats.io_ms
        per_worker_cpu[stats.worker] = (
            per_worker_cpu.get(stats.worker, 0.0) + stats.cpu_s
        )
    report.workers = run.workers
    report.shards = run.shards
    report.planning_io_ms = run.planning_io_ms
    report.shard_io_ms = [s.io_ms for s in run.shard_stats]
    report.shard_cpu_s = [s.cpu_s for s in run.shard_stats]
    report.merged_candidates = run.merged_candidates
    report.max_queue_depth = run.max_queue_depth
    report.degraded = run.degraded
    report.deadline_hit = run.deadline_hit
    report.lost_shards = list(run.lost_shards)
    report.lost_tid_ranges = list(run.lost_tid_ranges)
    report.filter_io_ms = run.planning_io_ms + max(per_worker_io.values(), default=0.0)
    report.filter_wall_s = (
        run.setup_cpu_s
        + run.merge_cpu_s
        + max(per_worker_cpu.values(), default=0.0)
    )
    report.refine_io_ms = run.refine_io_ms
    report.refine_wall_s = run.refine_cpu_s


def parallel_search(
    engine,
    query: Query,
    k: int = 10,
    distance: Optional[DistanceFunction] = None,
    deadline: Optional[float] = None,
) -> SearchReport:
    """One query through the sharded executor; the engine's parallel path.

    Falls through to the engine's sequential loop (without touching the
    fallback counter) when the planner decides the table is too small to
    shard.  Raises :class:`ParallelExecutionError` on pool failure.
    """
    config: ExecutorConfig = engine.executor
    dist = distance or engine.distance
    runner = _runner_for(engine, engine.index, config)
    if config.shard_count(engine.index.tuple_elements) <= 1:
        return engine._sequential_search(query, k, distance, deadline=deadline)

    registry = engine._registry()
    tracer = engine._tracer()
    report = ParallelSearchReport()
    with tracer.span(
        "query",
        engine=engine.name,
        k=k,
        attr_ids=list(query.attribute_ids()),
        parallel=True,
    ) as span:
        run = runner.run(
            [query],
            k,
            dist,
            skip_exact=engine.skip_exact,
            kernel=getattr(engine, "kernel", "scalar"),
            fail_mode=getattr(engine, "fail_mode", "raise"),
            tracer=tracer,
            parent_span=span,
            profile=getattr(engine, "profile", False),
            deadline=deadline,
            end_element=getattr(engine, "scan_end_element", None),
            kernel_cache=getattr(engine, "kernel_cache", None),
        )
        report.tuples_scanned = run.tuples_scanned
        report.exact_shortcuts = run.exact_shortcuts[0]
        report.table_accesses = run.table_accesses[0]
        _fill_report(report, run)
        report.results = [
            QueryResult(tid=entry.tid, distance=entry.distance)
            for entry in run.pools[0].results()
        ]
        if run.profiles is not None:
            report.profile = run.profiles[0].build(
                report,
                query=query,
                index=engine.index,
                engine=engine.name,
                kernel=getattr(engine, "kernel", "scalar"),
                fail_mode=getattr(engine, "fail_mode", "raise"),
                metric=getattr(dist.metric, "name", ""),
                k=k,
                parallel=True,
                workers=run.workers,
                shards=run.shards,
                shard_rows=_shard_rows(run),
            )
        _emit_parallel_obs(registry, tracer, engine.name, run)
        trace_phases(tracer, span, report)
        span.attrs["workers"] = run.workers
        span.attrs["shards"] = run.shards
    observe_search(registry, engine.name, report)
    return report


def parallel_search_batch(
    batch_engine,
    queries: Sequence[Query],
    k: int = 10,
    distance: Optional[DistanceFunction] = None,
    deadline: Optional[float] = None,
) -> List[SearchReport]:
    """A batch of queries through one sharded shared scan.

    Mirrors the sequential batch engine's cost attribution: shared costs
    (the scan, planning, deduplicated fetches) land on the first report;
    per-query counters stay exact.  Returns None-equivalent fallthrough to
    the sequential batch loop when the table is too small to shard.
    """
    config: ExecutorConfig = batch_engine.executor
    dist = distance or batch_engine.distance
    runner = _runner_for(batch_engine, batch_engine.index, config)
    if config.shard_count(batch_engine.index.tuple_elements) <= 1:
        return batch_engine._sequential_search_batch(
            queries, k, distance, deadline=deadline
        )

    registry = batch_engine._registry()
    tracer = batch_engine._tracer()
    with tracer.span(
        "query_batch",
        engine=batch_engine.name,
        k=k,
        queries=len(queries),
        parallel=True,
    ) as span:
        run = runner.run(
            list(queries),
            k,
            dist,
            skip_exact=True,
            kernel=getattr(batch_engine, "kernel", "scalar"),
            fail_mode=getattr(batch_engine, "fail_mode", "raise"),
            tracer=tracer,
            parent_span=span,
            profile=getattr(batch_engine, "profile", False),
            deadline=deadline,
            end_element=getattr(batch_engine, "scan_end_element", None),
            kernel_cache=getattr(batch_engine, "kernel_cache", None),
        )
        reports: List[SearchReport] = []
        for qi, pool in enumerate(run.pools):
            report: SearchReport
            if qi == 0:
                report = ParallelSearchReport()
                _fill_report(report, run)
            else:
                report = SearchReport()
            # A lost shard is lost for every query in the batch.
            report.degraded = run.degraded
            report.deadline_hit = run.deadline_hit
            report.lost_shards = list(run.lost_shards)
            report.lost_tid_ranges = list(run.lost_tid_ranges)
            report.tuples_scanned = run.tuples_scanned
            report.exact_shortcuts = run.exact_shortcuts[qi]
            report.table_accesses = run.table_accesses[qi]
            report.results = [
                QueryResult(tid=entry.tid, distance=entry.distance)
                for entry in pool.results()
            ]
            if run.profiles is not None:
                report.profile = run.profiles[qi].build(
                    report,
                    query=queries[qi],
                    index=batch_engine.index,
                    engine=batch_engine.name,
                    kernel=getattr(batch_engine, "kernel", "scalar"),
                    fail_mode=getattr(batch_engine, "fail_mode", "raise"),
                    metric=getattr(dist.metric, "name", ""),
                    k=k,
                    parallel=True,
                    workers=run.workers,
                    shards=run.shards,
                    shard_rows=_shard_rows(run) if qi == 0 else None,
                )
            reports.append(report)
        _emit_parallel_obs(registry, tracer, batch_engine.name, run)
        span.attrs["workers"] = run.workers
        span.attrs["shards"] = run.shards
    return reports
