"""Shard planning: tid-range slices of the synchronized scan.

Algorithm 1's filter phase walks the tuple list and the queried
attributes' vector lists in lockstep.  To split that walk across workers,
each shard needs an *entry point into every list*: the tuple-list slice is
trivial (fixed-width elements), but vector lists have variable-width
elements, so a shard's start offsets must be discovered by walking.

The planner prefers the index's build-time **sync directory**
(:meth:`~repro.core.iva_file.IVAFile.sync_checkpoints`): checkpoint
offsets recorded every :data:`~repro.core.iva_file.SYNC_INTERVAL`
elements while the lists were built, costing zero planning I/O — shard
boundaries snap to the nearest sync points.  When the directory is
unavailable (an attached index), the planner falls back to one charged
walk: it drives a scanning pointer per queried attribute across the
whole list, recording
:meth:`~repro.core.scan.VectorListScanner.checkpoint_offset` at every
shard boundary.  Either way the plan is cached per ``(index.version,
attribute set, shard count)``, so steady-state query traffic replans
only after an insert/delete/rebuild.

Correctness of the checkpoints:

* tid-based layouts (Types I/II text, Type I numeric) freeze at the first
  element whose tid exceeds the last consumed tuple; the checkpoint is the
  byte offset of that frozen element, so a fresh scanner constructed there
  re-reads it and continues the freeze semantics exactly;
* positional layouts (Type III text, Type IV numeric) consume exactly one
  element per tuple-list element — tombstones included — so the checkpoint
  after ``b`` elements is the start of element ``b``;
* delta-coded codecs (``repro.codec.compressed``) store each element
  relative to its predecessor, so a checkpoint is a full
  :class:`~repro.core.scan.ResumePoint` — byte offset *plus* the decoding
  base (last tid or last defined position) at that offset — recorded by
  :meth:`~repro.core.scan.VectorListScanner.checkpoint` on the walked
  path and computed arithmetically by the codec on the directory path.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.iva_file import IVAFile
from repro.core.scan import ResumePoint


@dataclass(frozen=True)
class ShardRange:
    """One worker's slice of the scan: tuple-list range plus entry points."""

    #: Shard ordinal (0-based, in tid order).
    index: int
    #: First tuple-list element position (inclusive).
    start_element: int
    #: Last tuple-list element position (exclusive).
    end_element: int
    #: Resume point per attribute id at which a fresh scanner resumes.
    checkpoints: Mapping[int, ResumePoint]

    @property
    def element_count(self) -> int:
        """Tuple-list elements in this shard (tombstones included)."""
        return self.end_element - self.start_element


class ShardPlanner:
    """Builds and caches shard plans for one iVA-file."""

    def __init__(self, index: IVAFile) -> None:
        self.index = index
        self._cache: Dict[
            Tuple[int, Tuple[int, ...], int, Optional[int]], List[ShardRange]
        ] = {}

    def plan(
        self,
        attr_ids: Sequence[int],
        shard_count: int,
        end_element: Optional[int] = None,
    ) -> List[ShardRange]:
        """The shard list for *attr_ids*, splitting into *shard_count* ranges.

        *end_element* bounds the plan to a snapshot watermark: shards only
        cover the first N tuple-list elements.  Cached per index version;
        only the most recent plan is retained (query traffic typically
        repeats the same attribute sets, and a single entry bounds memory).
        """
        key = (
            self.index.version,
            tuple(sorted(set(attr_ids))),
            shard_count,
            end_element,
        )
        plan = self._cache.get(key)
        if plan is None:
            plan = self._build(key[1], shard_count, end_element)
            self._cache = {key: plan}
        return plan

    def _build(
        self,
        attr_ids: Tuple[int, ...],
        shard_count: int,
        end_element: Optional[int] = None,
    ) -> List[ShardRange]:
        index = self.index
        total = index.tuple_elements
        if end_element is not None:
            total = min(total, end_element)
        if shard_count <= 1 or total == 0:
            return [
                ShardRange(
                    index=0,
                    start_element=0,
                    end_element=total,
                    checkpoints={attr_id: ResumePoint() for attr_id in attr_ids},
                )
            ]
        directory = index.sync_checkpoints(attr_ids)
        if directory is not None:
            return self._from_directory(attr_ids, shard_count, total, *directory)

        starts = sorted({round(i * total / shard_count) for i in range(shard_count)})
        boundaries = starts + [total]

        # One planning pass: walk every tuple-list element, drive each
        # attribute's scanning pointer, and snapshot checkpoint offsets
        # whenever a shard boundary is crossed.
        scanners = {attr_id: index.make_scanner(attr_id) for attr_id in attr_ids}
        checkpoint_rows: List[Dict[int, ResumePoint]] = []
        next_boundary = 0
        position = 0
        for position, tid in enumerate(index.tuples.element_tids()):
            while next_boundary < len(starts) and position == starts[next_boundary]:
                checkpoint_rows.append(
                    {a: s.checkpoint(position) for a, s in scanners.items()}
                )
                next_boundary += 1
            for scanner in scanners.values():
                scanner.move_to(tid)
        while next_boundary < len(starts):  # trailing empty boundaries
            checkpoint_rows.append(
                {
                    a: replace(s.checkpoint(total), position=starts[next_boundary])
                    for a, s in scanners.items()
                }
            )
            next_boundary += 1

        return [
            ShardRange(
                index=i,
                start_element=boundaries[i],
                end_element=boundaries[i + 1],
                checkpoints=checkpoint_rows[i],
            )
            for i in range(len(starts))
        ]

    @staticmethod
    def _from_directory(
        attr_ids: Tuple[int, ...],
        shard_count: int,
        total: int,
        positions: List[int],
        offsets: Mapping[int, Sequence[int]],
    ) -> List[ShardRange]:
        """Shard boundaries snapped to the index's sync points (no I/O)."""
        pos_index = {pos: i for i, pos in enumerate(positions)}
        starts = [0]
        for i in range(1, shard_count):
            want = round(i * total / shard_count)
            j = bisect.bisect_left(positions, want)
            candidates = positions[max(0, j - 1) : j + 1]
            if not candidates:
                continue
            best = min(candidates, key=lambda pos: abs(pos - want))
            if starts[-1] < best < total:
                starts.append(best)
        boundaries = starts + [total]
        return [
            ShardRange(
                index=i,
                start_element=starts[i],
                end_element=boundaries[i + 1],
                checkpoints={
                    attr_id: offsets[attr_id][pos_index[starts[i]]]
                    for attr_id in attr_ids
                },
            )
            for i in range(len(starts))
        ]
