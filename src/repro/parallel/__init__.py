"""Parallel query execution: sharded filter, overlapped refine.

See ``docs/parallelism.md`` for the execution model, determinism
guarantees, and tuning guidance.  Public surface:

* :class:`~repro.parallel.config.ExecutorConfig` — every knob;
* :class:`~repro.parallel.executor.ParallelSearchReport` — the
  :class:`~repro.core.engine.SearchReport` subclass parallel searches
  return, with the per-shard breakdown;
* :class:`~repro.parallel.executor.ParallelExecutionError` — raised when
  the pool cannot run (engines fall back to sequential by default);
* :class:`~repro.parallel.shards.ShardPlanner` /
  :class:`~repro.parallel.shards.ShardRange` — the checkpointed shard
  directory, reusable by other scan consumers.
"""

from repro.parallel.config import ExecutorConfig
from repro.parallel.executor import (
    ParallelExecutionError,
    ParallelScanExecutor,
    ParallelSearchReport,
    SharedBound,
    parallel_search,
    parallel_search_batch,
)
from repro.parallel.shards import ShardPlanner, ShardRange

__all__ = [
    "ExecutorConfig",
    "ParallelExecutionError",
    "ParallelScanExecutor",
    "ParallelSearchReport",
    "SharedBound",
    "ShardPlanner",
    "ShardRange",
    "parallel_search",
    "parallel_search_batch",
]
