"""Configuration of the parallel filter/refine executor.

One frozen dataclass carries every knob: worker count, execution mode,
shard granularity, candidate-queue depth, and whether a pool failure
degrades to the sequential path or raises.  Engines accept either a full
:class:`ExecutorConfig` (``executor=``) or just a worker count
(``parallelism=``) which expands to ``ExecutorConfig(workers=n)``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ParallelError

#: Supported execution modes.  ``"process"`` is rejected explicitly: the
#: simulated disk, its page cache, and the I/O counters are process-local
#: state, so worker processes would scan empty files and report nothing.
MODES = ("thread", "serial")

#: Auto mode never spawns more than this many workers, however many cores
#: the host reports — shards beyond this add merge overhead without
#: shortening the modeled critical path on the default workloads.
MAX_AUTO_WORKERS = 4


@dataclass(frozen=True)
class ExecutorConfig:
    """Tunables of :mod:`repro.parallel` (see ``docs/parallelism.md``)."""

    #: Worker threads scanning shards; 0 means auto (host cores, capped).
    workers: int = 0
    #: ``"thread"`` runs the pool; ``"serial"`` forces the sequential path.
    mode: str = "thread"
    #: Shards per worker (each worker scans a contiguous chunk of shards).
    #: Finer granularity merges finished shards sooner, tightening the
    #: shared pruning bound while the rest of the scan is still running.
    shard_factor: int = 2
    #: Bounded candidate-queue capacity (back-pressure on the scan when
    #: the refiner falls behind).
    queue_depth: int = 64
    #: Never split below this many tuple-list elements per shard; tiny
    #: tables run sequentially.
    min_shard_elements: int = 64
    #: Degrade to the sequential path when the pool cannot start or a
    #: worker dies (False re-raises :class:`ParallelExecutionError`).
    fallback: bool = True

    def __post_init__(self) -> None:
        if self.mode == "process":
            raise ParallelError(
                "mode='process' is not supported: the simulated disk and its "
                "page cache are process-local state, so worker processes "
                "would scan empty files; use mode='thread'"
            )
        if self.mode not in MODES:
            raise ParallelError(
                f"unknown executor mode {self.mode!r}; expected one of {MODES}"
            )
        if self.workers < 0:
            raise ParallelError(f"workers must be >= 0 (0 = auto), got {self.workers}")
        if self.shard_factor < 1:
            raise ParallelError(f"shard_factor must be >= 1, got {self.shard_factor}")
        if self.queue_depth < 1:
            raise ParallelError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.min_shard_elements < 1:
            raise ParallelError(
                f"min_shard_elements must be >= 1, got {self.min_shard_elements}"
            )

    def effective_workers(self) -> int:
        """The worker count this config resolves to on this host."""
        if self.mode == "serial":
            return 1
        if self.workers > 0:
            return self.workers
        return min(MAX_AUTO_WORKERS, os.cpu_count() or 1)

    def shard_count(self, total_elements: int) -> int:
        """How many shards to split *total_elements* tuple-list elements into.

        Returns 1 (run sequentially) when the table is too small to be
        worth splitting; otherwise ``workers * shard_factor`` capped so no
        shard drops below :attr:`min_shard_elements`.
        """
        workers = self.effective_workers()
        if workers <= 1 or total_elements < 2 * self.min_shard_elements:
            return 1
        by_size = total_elements // self.min_shard_elements
        return max(1, min(workers * self.shard_factor, by_size))
