"""Scatter/gather top-k over horizontally partitioned iVA-files.

Each partition is a complete single-node stack — simulated disk, sparse
wide table, iVA-file — and all partitions share one attribute catalog so
attribute ids (and therefore queries) mean the same thing everywhere.
Inserts route round-robin (the paper's community workload is append-heavy
and uniform routing keeps partitions balanced); a global id encodes
``(partition, local tid)``.

A query runs Algorithm 1 independently on every partition with the same
``k`` and merges the per-partition pools.  Correctness is immediate: the
global top-k is a subset of the union of per-partition top-k's.  Modeled
latency is the slowest partition (they run in parallel); modeled work is
the sum.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Mapping, Optional, Union

from repro.core.engine import IVAEngine, SearchReport, validate_fail_mode
from repro.core.iva_file import IVAConfig, IVAFile
from repro.errors import QueryError, StorageError
from repro.metrics.distance import DistanceFunction
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.query import Query
from repro.storage.catalog import Catalog
from repro.storage import (
    DiskParameters,
    SparseWideTable,
    StorageBackend,
    simulated_backend,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.config import ExecutorConfig

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class GlobalResult:
    """One answer tuple addressed globally."""

    partition: int
    tid: int
    distance: float

    @property
    def global_id(self) -> str:
        """Stable textual address: ``p<partition>:<tid>``."""
        return f"p{self.partition}:{self.tid}"


@dataclass
class PartitionedSearchReport:
    """Merged answer plus parallel-execution cost summary."""

    results: List[GlobalResult] = field(default_factory=list)
    per_partition: List[SearchReport] = field(default_factory=list)

    @property
    def elapsed_ms(self) -> float:
        """Modeled latency: partitions execute in parallel."""
        if not self.per_partition:
            return 0.0
        return max(r.query_time_ms for r in self.per_partition)

    @property
    def total_work_ms(self) -> float:
        """Modeled aggregate machine time across partitions."""
        return sum(r.query_time_ms for r in self.per_partition)

    @property
    def table_accesses(self) -> int:
        """Random table-file accesses across partitions."""
        return sum(r.table_accesses for r in self.per_partition)

    @property
    def tuples_scanned(self) -> int:
        """Tuples filtered across partitions."""
        return sum(r.tuples_scanned for r in self.per_partition)

    @property
    def degraded(self) -> bool:
        """True when any partition answered with lost shards."""
        return any(r.degraded for r in self.per_partition)

    @property
    def degraded_partitions(self) -> List[int]:
        """Partitions whose local answer is incomplete."""
        return [p for p, r in enumerate(self.per_partition) if r.degraded]


class PartitionedSystem:
    """A horizontally partitioned sparse wide table with per-partition iVA-files."""

    def __init__(
        self,
        num_partitions: int,
        disk_params: Optional[DiskParameters] = None,
        iva_config: Optional[IVAConfig] = None,
        distance: Optional[DistanceFunction] = None,
        registry: Optional[MetricsRegistry] = None,
        parallelism: Optional[int] = None,
        executor: Optional["ExecutorConfig"] = None,
        fail_mode: str = "raise",
    ) -> None:
        if num_partitions < 1:
            raise QueryError("need at least one partition")
        self.registry = registry
        self.catalog = Catalog()
        self.distance = distance or DistanceFunction()
        self._iva_config = iva_config or IVAConfig()
        if executor is None and parallelism is not None:
            from repro.parallel.config import ExecutorConfig

            executor = ExecutorConfig(workers=parallelism)
        #: Intra-partition parallelism: each partition's engine shards its
        #: own filter scan, composing with the scatter-gather across
        #: partitions.  None means sequential per-partition engines.
        self.executor = executor
        #: Scan-failure policy handed to every partition engine; with
        #: ``"degrade"`` a partition that loses shards flags its local
        #: report and :attr:`PartitionedSearchReport.degraded` goes true.
        self.fail_mode = validate_fail_mode(fail_mode)
        self.disks: List[StorageBackend] = []
        self.tables: List[SparseWideTable] = []
        self.indexes: List[Optional[IVAFile]] = []
        self._engines: List[Optional[IVAEngine]] = []
        for _ in range(num_partitions):
            disk = simulated_backend(disk_params)
            self.disks.append(disk)
            self.tables.append(SparseWideTable(disk, catalog=self.catalog))
            self.indexes.append(None)
            self._engines.append(None)
        self._next_route = 0

    @property
    def num_partitions(self) -> int:
        """Number of partitions in the system."""
        return len(self.tables)

    def __len__(self) -> int:
        return sum(len(table) for table in self.tables)

    # --------------------------------------------------------------- loading

    def insert(self, values: Mapping[str, object]) -> GlobalResult:
        """Round-robin insert; returns the tuple's global address."""
        partition = self._next_route % self.num_partitions
        self._next_route += 1
        table = self.tables[partition]
        cells = table.prepare_cells(values)
        tid = table.insert_record(cells)
        index = self.indexes[partition]
        if index is not None:
            index.insert(tid, cells)
        return GlobalResult(partition=partition, tid=tid, distance=0.0)

    def delete(self, partition: int, tid: int) -> None:
        """Tombstone the tuple with this tid."""
        self._check_partition(partition)
        self.tables[partition].delete(tid)
        index = self.indexes[partition]
        if index is not None:
            index.delete(tid)

    def build_indexes(self) -> None:
        """(Re)build every partition's iVA-file; call after bulk loading."""
        for partition, table in enumerate(self.tables):
            self.indexes[partition] = IVAFile.build(table, self._iva_config)
            self._engines[partition] = None

    def _engine(self, partition: int, dist: DistanceFunction) -> IVAEngine:
        """The partition's cached engine (keeps shard plans warm).

        Rebuilt when the index or distance changed; reusing the engine
        lets the parallel executor serve shard plans from its cache across
        the query stream instead of replanning per query.
        """
        engine = self._engines[partition]
        index = self.indexes[partition]
        if engine is None or engine.index is not index or engine.distance is not dist:
            engine = IVAEngine(
                self.tables[partition],
                index,
                dist,
                executor=self.executor,
                fail_mode=self.fail_mode,
            )
            self._engines[partition] = engine
        return engine

    def rebuild(self) -> None:
        """Periodic cleaning (Sec. IV-B) on every partition."""
        for partition, table in enumerate(self.tables):
            table.rebuild()
            index = self.indexes[partition]
            if index is not None:
                index.rebuild()

    def total_index_bytes(self) -> int:
        """Combined index bytes across all shards."""
        return sum(
            index.total_bytes() for index in self.indexes if index is not None
        )

    def total_table_bytes(self) -> int:
        """Combined table-file bytes across all shards."""
        return sum(table.file_bytes for table in self.tables)

    # --------------------------------------------------------------- queries

    def search(
        self,
        query: Union[Query, Mapping[str, object]],
        k: int = 10,
        distance: Optional[DistanceFunction] = None,
    ) -> PartitionedSearchReport:
        """Scatter the query to every partition and merge the top-k."""
        if isinstance(query, Mapping):
            query = Query.from_dict(self.catalog, query)
        elif not isinstance(query, Query):
            raise QueryError(f"cannot interpret {query!r} as a query")
        dist = distance or self.distance
        report = PartitionedSearchReport()
        merged: List[GlobalResult] = []
        for partition, table in enumerate(self.tables):
            index = self.indexes[partition]
            if index is None:
                raise StorageError(
                    f"partition {partition} has no index; call build_indexes()"
                )
            local = self._engine(partition, dist).search(query, k=k)
            report.per_partition.append(local)
            merged.extend(
                GlobalResult(partition=partition, tid=r.tid, distance=r.distance)
                for r in local.results
            )
        merged.sort(key=lambda r: (r.distance, r.partition, r.tid))
        report.results = merged[:k]
        self._observe(report)
        return report

    def _observe(self, report: PartitionedSearchReport) -> None:
        """Per-partition rollups: where in the fleet does query time go?"""
        registry = self.registry if self.registry is not None else get_registry()
        for partition, local in enumerate(report.per_partition):
            labels = {"partition": str(partition)}
            registry.histogram(
                "repro_partition_query_time_ms",
                labels=labels,
                help="Modeled per-partition query time (straggler detection).",
            ).observe(local.query_time_ms)
            registry.counter(
                "repro_partition_table_accesses_total",
                labels=labels,
                help="Random table-file accesses per partition.",
            ).inc(local.table_accesses)
        registry.histogram(
            "repro_scatter_gather_ms",
            help="Modeled scatter/gather latency (slowest partition).",
        ).observe(report.elapsed_ms)
        logger.debug(
            "scatter/gather over %d partition(s): %.1f ms latency, %.1f ms work",
            len(report.per_partition),
            report.elapsed_ms,
            report.total_work_ms,
        )

    def read(self, partition: int, tid: int):
        """Read one tuple by address."""
        self._check_partition(partition)
        return self.tables[partition].read(tid)

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise QueryError(f"no partition {partition}")
