"""Vertically partitioned iVA-files: attribute groups on separate nodes.

The second half of the paper's Sec. VI remark: because the iVA-file keeps
one independent vector list per attribute, the lists shard naturally *by
attribute*.  Each scan node owns the vector lists (and a small shadow
tuple list) of one attribute group; the full table file stays on the
storage node.  A query touches only the nodes owning its attributes: each
runs its part of the synchronized scan and streams per-tuple lower bounds;
the coordinator combines them with the metric, keeps the top-k pool, and
refines against the storage node — Algorithm 1, distributed along its
attribute axis.

Construction snapshots the base table: shadow row *i* on every node
corresponds to the *i*-th live base tuple (``_base_tids[i]``).  Tuples
deleted from the base table afterwards are skipped at query time; after
heavy churn, rebuild the partitioning.

Costs are per node (each has its own simulated disk); the report's
modeled latency takes the max of the scan nodes (parallel) plus the
storage node's refine I/O.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro.core.engine import QueryResult
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.core.iva_file import IVAConfig, IVAFile
from repro.core.pool import ResultPool
from repro.core.signature import QueryStringEncoder
from repro.errors import QueryError
from repro.metrics.distance import DistanceFunction
from repro.query import Query
from repro.storage import DiskParameters, SparseWideTable, simulated_backend

logger = logging.getLogger(__name__)


@dataclass
class VerticalSearchReport:
    """Answers plus per-node cost accounting."""

    results: List[QueryResult] = field(default_factory=list)
    tuples_scanned: int = 0
    table_accesses: int = 0
    #: Modeled scan I/O per participating node (node id -> ms).
    scan_io_ms: Dict[int, float] = field(default_factory=dict)
    refine_io_ms: float = 0.0
    wall_s: float = 0.0

    @property
    def elapsed_ms(self) -> float:
        """Scan nodes run in parallel; refine is serial on the storage node."""
        scan = max(self.scan_io_ms.values()) if self.scan_io_ms else 0.0
        return scan + self.refine_io_ms + self.wall_s * 1000.0


class VerticallyPartitionedIVA:
    """Attribute-group sharding of one table's iVA-file."""

    def __init__(
        self,
        table: SparseWideTable,
        num_nodes: int,
        config: Optional[IVAConfig] = None,
        disk_params: Optional[DiskParameters] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> None:
        if num_nodes < 1:
            raise QueryError("need at least one scan node")
        self.table = table
        self.config = config or IVAConfig()
        self.num_nodes = num_nodes
        self._assignment: Dict[int, int] = {}
        for attr in table.catalog:
            if assignment is not None and attr.name in assignment:
                node = assignment[attr.name]
                if not 0 <= node < num_nodes:
                    raise QueryError(
                        f"attribute {attr.name!r} assigned to bad node {node}"
                    )
            else:
                node = attr.attr_id % num_nodes
            self._assignment[attr.attr_id] = node

        #: Shadow row i on every node ↔ base tuple _base_tids[i].
        self._base_tids = table.live_tids()
        self.node_disks = [simulated_backend(disk_params) for _ in range(num_nodes)]
        self.node_indexes: List[IVAFile] = []
        records = list(table.scan())
        for node, disk in enumerate(self.node_disks):
            shadow = SparseWideTable(disk, name=f"shadow{node}", catalog=table.catalog)
            for record in records:
                cells = {
                    attr_id: value
                    for attr_id, value in record.cells.items()
                    if self._assignment[attr_id] == node
                }
                # Alignment row even when this node owns none of the
                # tuple's attributes (the interpreted codec allows empty
                # rows; queries see them as all-ndf).
                shadow.insert_record(cells)
            self.node_indexes.append(IVAFile.build(shadow, self._node_config(node)))

    def _node_config(self, node: int) -> IVAConfig:
        return IVAConfig(
            alpha=self.config.alpha,
            n=self.config.n,
            name=f"{self.config.name}_n{node}",
            alpha_overrides=self.config.alpha_overrides,
            codec=self.config.codec,
        )

    def node_of(self, attribute: str) -> int:
        """Which scan node owns an attribute's vector list."""
        attr = self.table.catalog.require(attribute)
        return self._assignment[attr.attr_id]

    def total_index_bytes(self) -> int:
        """Combined index bytes across all shards."""
        return sum(index.total_bytes() for index in self.node_indexes)

    def search(
        self,
        query: Union[Query, Mapping[str, object]],
        k: int = 10,
        distance: Optional[DistanceFunction] = None,
    ) -> VerticalSearchReport:
        """Distributed Algorithm 1 across the attribute shards."""
        if isinstance(query, Mapping):
            query = Query.from_dict(self.table.catalog, query)
        elif not isinstance(query, Query):
            raise QueryError(f"cannot interpret {query!r} as a query")
        dist = distance or DistanceFunction()
        report = VerticalSearchReport()
        started = time.perf_counter()

        by_node: Dict[int, List[int]] = {}
        for term in query.terms:
            node = self._assignment[term.attr.attr_id]
            by_node.setdefault(node, []).append(term.attr.attr_id)
        scans = {
            node: self.node_indexes[node].open_scan(attr_ids)
            for node, attr_ids in by_node.items()
        }
        scan_io_start = {
            node: self.node_disks[node].stats.io_time_ms for node in by_node
        }

        n = self.config.n
        encoders = {
            term.attr.attr_id: QueryStringEncoder(str(term.value), n)
            for term in query.terms
            if term.attr.is_text
        }
        ndf_penalty = dist.ndf_penalty
        pool = ResultPool(k)
        storage_disk = self.table.disk
        refine_io = 0.0
        iterators = {node: iter(scan) for node, scan in scans.items()}

        for position, base_tid in enumerate(self._base_tids):
            payload_by_attr: Dict[int, object] = {}
            for node, scan in scans.items():
                local_tid, _ = next(iterators[node])
                assert local_tid == position
                for attr_id, payload in zip(scan.attr_ids, scan.payloads(local_tid)):
                    payload_by_attr[attr_id] = payload
            if not self.table.is_live(base_tid):
                continue
            report.tuples_scanned += 1
            diffs: List[float] = []
            exact = True
            for term in query.terms:
                payload = payload_by_attr[term.attr.attr_id]
                if payload is None:
                    diffs.append(ndf_penalty)
                    continue
                exact = False
                if term.attr.is_text:
                    diffs.append(
                        min(encoders[term.attr.attr_id].lower_bound(s) for s in payload)
                    )
                else:
                    entry = self.node_indexes[
                        self._assignment[term.attr.attr_id]
                    ].entry(term.attr.attr_id)
                    diffs.append(entry.quantizer.lower_bound(float(term.value), payload))
            estimated = dist.combine_bounds(query, diffs)
            if exact:
                pool.insert(base_tid, estimated)
                continue
            if pool.is_candidate(estimated):
                io_before = storage_disk.stats.io_time_ms
                record = self.table.read(base_tid)
                pool.insert(base_tid, dist.actual(query, record))
                refine_io += storage_disk.stats.io_time_ms - io_before
                report.table_accesses += 1

        for node in by_node:
            report.scan_io_ms[node] = (
                self.node_disks[node].stats.io_time_ms - scan_io_start[node]
            )
        report.refine_io_ms = refine_io
        report.wall_s = time.perf_counter() - started
        report.results = [
            QueryResult(tid=e.tid, distance=e.distance) for e in pool.results()
        ]
        self._observe(report)
        return report

    def _observe(self, report: VerticalSearchReport) -> None:
        """Per-node rollups plus a synthetic query span for the trace."""
        registry = get_registry()
        tracer = get_tracer()
        with tracer.span(
            "query", engine="iVA-vertical", modeled_ms=report.elapsed_ms
        ):
            for node, scan_ms in sorted(report.scan_io_ms.items()):
                registry.histogram(
                    "repro_vertical_scan_io_ms",
                    labels={"node": str(node)},
                    help="Modeled scan I/O per vertical shard (straggler check).",
                ).observe(scan_ms)
                tracer.record("filter", 0.0, node=node, io_ms=scan_ms)
            tracer.record(
                "refine",
                0.0,
                io_ms=report.refine_io_ms,
                table_accesses=report.table_accesses,
            )
        registry.histogram(
            "repro_query_time_ms",
            labels={"engine": "iVA-vertical"},
            help="Modeled per-query time: simulated I/O plus wall-clock CPU.",
        ).observe(report.elapsed_ms)
        registry.counter(
            "repro_table_accesses_total",
            labels={"engine": "iVA-vertical"},
            help="Random table-file accesses during refinement (paper Fig. 8).",
        ).inc(report.table_accesses)
        logger.debug(
            "vertical query over %d node(s): %.1f ms modeled, %d refinements",
            len(report.scan_io_ms),
            report.elapsed_ms,
            report.table_accesses,
        )
