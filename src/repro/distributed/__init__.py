"""Horizontally partitioned iVA-files (the paper's closing remark).

"Further, being a non-hierarchical index, the iVA-file is suitable for
indexing horizontally or vertically partitioned datasets in a distributed
and parallel system architecture which is widely adopted for implementing
the community systems." (Sec. VI.)

:class:`~repro.distributed.partitioned.PartitionedSystem` realises the
horizontal variant: tuples are spread over independent partitions (each
with its own simulated disk, table file and iVA-file), queries scatter to
every partition's engine and the per-partition top-k answers merge into a
global top-k — exact, because each partition's answer is exact.
"""

from repro.distributed.partitioned import GlobalResult, PartitionedSearchReport, PartitionedSystem
from repro.distributed.vertical import VerticallyPartitionedIVA, VerticalSearchReport

__all__ = [
    "GlobalResult",
    "PartitionedSearchReport",
    "PartitionedSystem",
    "VerticallyPartitionedIVA",
    "VerticalSearchReport",
]
