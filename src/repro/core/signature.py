"""The nG-signature: approximate string representation (paper Sec. III-B).

A signature ``c(s)`` has two parts:

* ``cL(s)`` — the lower bits recording the string length (one byte here;
  lengths saturate at 255, which only ever *lowers* the estimate and so
  preserves the no-false-negative guarantee);
* ``cH[l, t](s)`` — ``l`` higher bits, the logical OR of ``h[l, t](ω)`` over
  all n-grams ω of ``s``, where the hash ``h[l, t]`` always sets exactly
  ``t`` of ``l`` bits (Example 3.2).

Given a query string the edit distance is estimated from the *hit gram set*
(Defs. 3.1–3.3, Eq. 3); Prop. 3.3 shows ``est(sq, c(sd)) ≤ ed(sq, sd)``.

Sizing follows Sec. III-D: for relative vector length α, the higher bits of
a data string of stored length ``L`` occupy ``ceil(α · (L + n − 1))`` bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.ngram import estimate_from_hits, gram_multiset
from repro.core.params import optimal_t
from repro.errors import EncodingError
from repro.model.values import MAX_ENCODED_STRING_LENGTH
from repro.storage.pager import BufferedReader

_MASK64 = (1 << 64) - 1


def _fnv1a64(data: bytes) -> int:
    """FNV-1a: a small, stable, dependency-free 64-bit hash."""
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & _MASK64
    return h


def _splitmix64(x: int) -> int:
    """One step of the splitmix64 sequence — a 64-bit bijection, so the
    position stream derived from it cannot get stuck in a short cycle."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


_MASK_CACHE: Dict[Tuple[str, int, int], int] = {}
_MASK_CACHE_LIMIT = 1 << 20


if hasattr(int, "bit_count"):  # Python >= 3.10

    def _mask_popcount(mask_count: Tuple[int, int]) -> int:
        """Sort key for query gram masks: the mask's population count."""
        return mask_count[0].bit_count()

else:  # pragma: no cover - exercised only on older interpreters

    def _mask_popcount(mask_count: Tuple[int, int]) -> int:
        """Sort key for query gram masks: the mask's population count."""
        return bin(mask_count[0]).count("1")


def gram_mask(gram: str, l_bits: int, t: int) -> int:
    """``h[l, t](ω)``: an ``l``-bit vector with exactly ``t`` one bits.

    Deterministic across runs and processes (no reliance on Python's
    randomised ``hash``).  Cached: real deployments pre-compute gram hashes,
    and the query loop evaluates the same grams millions of times.
    """
    key = (gram, l_bits, t)
    cached = _MASK_CACHE.get(key)
    if cached is not None:
        return cached
    if not 0 < t < l_bits:
        raise EncodingError(f"need 0 < t < l, got t={t} l={l_bits}")
    x = _fnv1a64(gram.encode("utf-8")) ^ (l_bits * 0x9E3779B9 + t)
    positions = set()
    guard = 64 * (t + 1)
    while len(positions) < t and guard:
        x = _splitmix64(x)
        positions.add(x % l_bits)
        guard -= 1
    # Astronomically unlikely fallback; keeps the function total and
    # deterministic even for adversarial parameters.
    fill = 0
    while len(positions) < t:
        positions.add(fill % l_bits)
        fill += 1
    mask = 0
    for pos in positions:
        mask |= 1 << pos
    if len(_MASK_CACHE) >= _MASK_CACHE_LIMIT:
        _MASK_CACHE.clear()
    _MASK_CACHE[key] = mask
    return mask


@dataclass(frozen=True)
class Signature:
    """An encoded nG-signature: stored length plus the higher-bit vector."""

    length: int
    l_bits: int
    t: int
    bits: int

    @property
    def byte_size(self) -> int:
        """Serialized size: one length byte plus the higher bits."""
        return 1 + self.l_bits // 8

    def to_bytes(self) -> bytes:
        """Serialize: length byte then the higher bits."""
        return bytes([self.length]) + self.bits.to_bytes(self.l_bits // 8, "little")


class SignatureScheme:
    """Factory bound to ``(α, n)``: encodes, sizes, and deserialises.

    The scheme is the *reader's* contract: given only a stored length byte
    and the attribute's α and n, it derives the higher-bit width ``l`` and
    the hash's ``t`` — so signatures are self-describing inside a vector
    list without per-vector headers.
    """

    def __init__(self, alpha: float, n: int) -> None:
        if not 0 < alpha <= 1:
            raise EncodingError(f"relative vector length α must be in (0, 1], got {alpha}")
        if n < 1:
            raise EncodingError(f"gram length n must be >= 1, got {n}")
        self.alpha = alpha
        self.n = n
        self._higher_table: Optional[List[int]] = None

    @property
    def higher_table(self) -> List[int]:
        """``higher_bytes`` for every possible stored-length byte, cached.

        The segment decoders parse thousands of signatures per block; a
        256-entry table turns the per-signature ``ceil`` into one index.
        """
        table = self._higher_table
        if table is None:
            table = self._higher_table = [
                self.higher_bytes(length) for length in range(256)
            ]
        return table

    def stored_length(self, s: str) -> int:
        """The (saturating) length recorded in cL."""
        return min(len(s), MAX_ENCODED_STRING_LENGTH)

    def higher_bytes(self, stored_length: int) -> int:
        """``ceil(α · (|sd| + n − 1))`` bytes (Sec. III-D), at least 1."""
        grams = stored_length + self.n - 1
        return max(1, math.ceil(self.alpha * grams))

    def parameters_for(self, stored_length: int) -> Tuple[int, int]:
        """``(l_bits, t)`` for a data string of this stored length."""
        l_bits = 8 * self.higher_bytes(stored_length)
        t = optimal_t(l_bits, stored_length + self.n - 1)
        return l_bits, t

    def encode(self, s: str) -> Signature:
        """Encode a data string into its nG-signature."""
        if not s:
            raise EncodingError("cannot encode an empty string")
        stored = self.stored_length(s)
        l_bits, t = self.parameters_for(stored)
        bits = 0
        for gram in gram_multiset(s, self.n):
            bits |= gram_mask(gram, l_bits, t)
        return Signature(length=stored, l_bits=l_bits, t=t, bits=bits)

    def vector_byte_size(self, s: str) -> int:
        """Serialized size of the signature of *s* without encoding it."""
        return 1 + self.higher_bytes(self.stored_length(s))

    def read(self, reader: BufferedReader) -> Signature:
        """Deserialise one signature from a buffered scan."""
        stored = reader.read(1)[0]
        l_bits, t = self.parameters_for(stored)
        raw = reader.read(l_bits // 8)
        return Signature(
            length=stored, l_bits=l_bits, t=t, bits=int.from_bytes(raw, "little")
        )

    def read_from_bytes(self, buffer: bytes, offset: int) -> Tuple[Signature, int]:
        """Deserialise one signature from a byte buffer; returns (sig, end)."""
        stored = buffer[offset]
        l_bits, t = self.parameters_for(stored)
        nbytes = l_bits // 8
        end = offset + 1 + nbytes
        bits = int.from_bytes(buffer[offset + 1 : end], "little")
        return Signature(length=stored, l_bits=l_bits, t=t, bits=bits), end

    def read_raw(self, reader: BufferedReader) -> Tuple[int, int]:
        """Deserialise one signature as a bare ``(stored_length, bits)`` pair.

        The block filter kernel's decode path: skips both the
        :class:`Signature` object construction and the ``optimal_t`` lookup
        per vector — the kernel re-derives ``(l_bits, t)`` once per distinct
        stored length instead of once per signature.
        """
        stored = reader.read(1)[0]
        raw = reader.read(self.higher_bytes(stored))
        return stored, int.from_bytes(raw, "little")


class QueryStringEncoder:
    """Query-side evaluator of ``est(sq, c(sd))`` (Eq. 3).

    Pre-computes the query's gram multiset once, and caches per-``(l, t)``
    gram masks — different data-string lengths induce different signature
    geometries, but the handful of short-string lengths in an SWT means the
    cache converges immediately.
    """

    def __init__(self, query_string: str, n: int) -> None:
        if not query_string:
            raise EncodingError("cannot build an encoder for an empty string")
        self.query_string = query_string
        self.n = n
        self.query_length = len(query_string)
        self._grams = list(gram_multiset(query_string, n).items())
        self._mask_cache: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

    def _masks(self, l_bits: int, t: int) -> List[Tuple[int, int]]:
        key = (l_bits, t)
        masks = self._mask_cache.get(key)
        if masks is None:
            masks = [
                (gram_mask(gram, l_bits, t), count) for gram, count in self._grams
            ]
            # Most-selective mask first: a signature that misses any gram
            # rejects fastest on the mask with the most one bits (hit counts
            # are order-independent sums, so the ordering is free).  The
            # sort is stable, so equal-popcount masks keep gram order and
            # the result stays deterministic.
            masks.sort(key=_mask_popcount, reverse=True)
            self._mask_cache[key] = masks
        return masks

    @property
    def total_grams(self) -> int:
        """``|g(sq)|`` — the query's gram count (the hit count's ceiling)."""
        return self.query_length + self.n - 1

    def masks_for(self, l_bits: int, t: int) -> List[Tuple[int, int]]:
        """The query's ``(mask, count)`` pairs for one signature geometry.

        Most-selective (highest popcount) mask first; cached per
        ``(l_bits, t)``.  Shared with the block filter kernel so both paths
        test exactly the same masks in the same order.
        """
        return self._masks(l_bits, t)

    def hit_count(self, signature: Signature) -> int:
        """``|hg(sq, c(sd))|`` — Def. 3.3, with appearance counts."""
        bits = signature.bits
        total = 0
        for mask, count in self._masks(signature.l_bits, signature.t):
            if mask & bits == mask:
                total += count
        return total

    def estimate(self, signature: Signature) -> float:
        """``est(sq, c(sd))`` — Eq. 3; may be negative."""
        hits = self.hit_count(signature)
        return estimate_from_hits(self.query_length, signature.length, hits, self.n)

    def lower_bound(self, signature: Signature) -> float:
        """The usable edit-distance lower bound: ``max(0, est)``."""
        est = self.estimate(signature)
        return est if est > 0.0 else 0.0
