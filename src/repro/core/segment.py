"""Columnar vector-list segments for the v3 filter kernel.

The block kernel (PR 4) already evaluates tuples a block at a time, but it
still receives each vector list as a *per-element* Python column — one
list entry (or ``None``) per tuple.  Kernel v3 goes one step further: a
scanner's :meth:`~repro.core.scan.VectorListScanner.decode_segment`
materialises the whole block of one vector list into a **segment** — a
columnar batch the kernel can evaluate with array-wide gathers instead of
per-entry Python calls.

Three segment shapes cover every layout:

* :class:`NumericSegment` — parallel ``codes``/``defined`` numpy arrays,
  one slot per tuple in the block (``codes`` is only meaningful where
  ``defined`` is True).  Feeds the LUT gather in
  :func:`repro.core.fastpath.gather_bounds_array`.
* :class:`TextSegment` — a flat run of signatures as three parallel
  Python lists (``slots``/``lengths``/``bits``; ``slots`` is
  non-decreasing, repeating when one tuple stores several strings).  The
  kernel computes hit counts in one flat loop and min-reduces per slot
  with a single vectorized scatter.
* :class:`ColumnSegment` — an adapter wrapping a legacy ``move_block``
  column verbatim.  The default ``decode_segment`` produces it, so every
  scanner (including third-party codecs and the engine's null scanner)
  participates in the v3 path; the kernel evaluates it with the exact
  scalar ``bound_column`` routines, which keeps bit-identity trivially.

Every segment can rebuild the legacy column via :meth:`column`, which is
how the numpy-absent fallback re-enters ``evaluate_block`` unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import fastpath


class ColumnSegment:
    """A legacy ``move_block`` column wrapped as a segment (fallback)."""

    kind = "column"

    __slots__ = ("_column",)

    def __init__(self, column: list) -> None:
        self._column = column

    def column(self) -> list:
        return self._column

    def defined_count(self, count: int) -> int:
        return sum(1 for payload in self._column if payload is not None)


class NumericSegment:
    """One block of a numeric vector list as ``codes``/``defined`` arrays."""

    kind = "numeric"

    __slots__ = ("codes", "defined")

    def __init__(self, codes, defined) -> None:
        #: int64 array of quantizer codes (garbage where not defined).
        self.codes = codes
        #: bool array: True where the tuple stores a value for the attribute.
        self.defined = defined

    def column(self) -> List[Optional[int]]:
        codes = self.codes.tolist()
        defined = self.defined.tolist()
        return [codes[i] if defined[i] else None for i in range(len(codes))]

    def defined_count(self, count: int) -> int:
        return int(self.defined.sum())


class TextSegment:
    """One block of a text vector list as a flat run of signatures.

    ``slots[j]`` is the block-local tuple index of the j-th signature;
    slots are non-decreasing (a Type II tuple storing several strings
    repeats its slot).  ``lengths``/``bits`` carry the bare
    ``(stored_length, higher_bits)`` pairs :meth:`SignatureScheme.read_raw`
    produces, so the kernel's per-length mask tables apply unchanged.
    """

    kind = "text"

    __slots__ = ("count", "slots", "lengths", "bits", "unique_slots", "_slots_np")

    def __init__(
        self,
        count: int,
        slots: List[int],
        lengths: List[int],
        bits: List[int],
        unique_slots: int,
    ) -> None:
        self.count = count
        self.slots = slots
        self.lengths = lengths
        self.bits = bits
        #: Number of distinct tuples that store at least one string.
        self.unique_slots = unique_slots
        self._slots_np = None

    def slots_array(self):
        """The slots as an index array (cached; numpy must be present)."""
        if self._slots_np is None:
            np = fastpath._np
            self._slots_np = np.asarray(self.slots, dtype=np.intp)
        return self._slots_np

    def column(self) -> list:
        column: list = [None] * self.count
        for j, slot in enumerate(self.slots):
            pairs = column[slot]
            if pairs is None:
                pairs = []
                column[slot] = pairs
            pairs.append((self.lengths[j], self.bits[j]))
        return column

    def defined_count(self, count: int) -> int:
        return self.unique_slots
