"""The nG-signature parameter model (paper Sec. III-B.3 and Appendix A).

For a signature of ``l`` higher bits in which each gram hash sets exactly
``t`` bits, the probability that a non-gram of the data string is a *false
hit* is (Eq. 6)

``p = (1 − (1 − t/l)^(|sd| + n − 1))^t``

and the expected relative error of the estimate is ``ē ≈ p`` (Eq. 5).  For a
given ``l`` the best ``t`` minimises ``ē``; the paper pre-computes the proper
``t`` for every ``(l, |sd| + n − 1)`` and keeps it in an in-memory table —
:func:`optimal_t` reproduces exactly that.
"""

from __future__ import annotations

from functools import lru_cache


def false_hit_probability(l_bits: int, t: int, gram_count: int) -> float:
    """Eq. 6: probability a non-gram is a false hit in the signature."""
    if l_bits <= 0:
        raise ValueError("signature length must be positive")
    if not 0 < t < l_bits:
        raise ValueError(f"t must satisfy 0 < t < l, got t={t} l={l_bits}")
    if gram_count < 0:
        raise ValueError("gram count must be non-negative")
    zero_bit = (1.0 - t / l_bits) ** gram_count
    return (1.0 - zero_bit) ** t


def expected_relative_error(l_bits: int, t: int, gram_count: int) -> float:
    """Eq. 5: the expected relative error ``ē`` of the estimate (≈ p)."""
    return false_hit_probability(l_bits, t, gram_count)


@lru_cache(maxsize=None)
def optimal_t(l_bits: int, gram_count: int) -> int:
    """The ``t`` in ``1..l−1`` minimising Eq. 5 for this ``(l, gram count)``.

    Cached, reproducing the paper's "pre-calculated and stored in an
    in-memory table to save the run-time cpu burden".
    """
    if l_bits < 2:
        return 1
    grams = max(gram_count, 1)
    best_t = 1
    best_error = false_hit_probability(l_bits, 1, grams)
    for t in range(2, l_bits):
        error = false_hit_probability(l_bits, t, grams)
        if error < best_error:
            best_error = error
            best_t = t
        elif error > best_error * 4:
            # The error curve is unimodal in t; once it has clearly turned
            # upward there is no point scanning the long tail.
            break
    return best_t
