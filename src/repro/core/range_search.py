"""Single-attribute range similarity search on top of the iVA-file.

Besides top-k queries, CWMS front-ends routinely need "every tuple whose
*Company* is within edit distance 1 of 'Canon'" — the approximate string
selection of Li/Lu/Lu [11] the paper cites.  The iVA-file answers it with
the same machinery: scan one vector list, keep tuples whose estimated
difference is within the threshold (no false negatives, Prop. 3.3),
verify survivors against the table file.

Numeric attributes get the symmetric operation: every tuple whose value is
within ``radius`` of the query value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.iva_file import DELETED_PTR, IVAFile
from repro.core.signature import QueryStringEncoder
from repro.errors import QueryError
from repro.metrics.edit_distance import edit_distance_within
from repro.model.values import is_ndf, is_numeric_value
from repro.storage.table import SparseWideTable


@dataclass(frozen=True)
class RangeMatch:
    """A tuple matching a range query, with its exact difference."""

    tid: int
    difference: float


@dataclass
class RangeReport:
    """Matches plus the cost counters of one range search."""

    matches: List[RangeMatch] = field(default_factory=list)
    tuples_scanned: int = 0
    candidates: int = 0
    table_accesses: int = 0
    io_time_ms: float = 0.0
    wall_s: float = 0.0


class RangeSearcher:
    """Filter-and-verify range search over one attribute."""

    def __init__(self, table: SparseWideTable, index: IVAFile) -> None:
        self.table = table
        self.index = index

    def within_edit_distance(
        self, attribute: str, query_string: str, threshold: int
    ) -> RangeReport:
        """All live tuples with a string within *threshold* edits.

        The exact difference reported is the smallest edit distance over
        the tuple's strings on the attribute (the paper's ``d[A]``).
        """
        attr = self.table.catalog.require(attribute)
        if not attr.is_text:
            raise QueryError(f"attribute {attribute!r} is numeric; use within_radius")
        if threshold < 0:
            raise QueryError("threshold must be non-negative")
        if not query_string:
            raise QueryError("query string must be non-empty")
        encoder = QueryStringEncoder(query_string, self.index.config.n)
        report = RangeReport()
        disk = self.table.disk
        io_before = disk.stats.io_time_ms
        started = time.perf_counter()

        scan = self.index.open_scan([attr.attr_id])
        for tid, ptr in scan:
            (payload,) = scan.payloads(tid)
            if ptr == DELETED_PTR:
                continue
            report.tuples_scanned += 1
            if payload is None:
                continue
            estimate = min(encoder.lower_bound(sig) for sig in payload)
            if estimate > threshold:
                continue
            report.candidates += 1
            record = self.table.read(tid)
            report.table_accesses += 1
            value = record.value(attr.attr_id)
            if is_ndf(value):
                continue
            best: Optional[int] = None
            for s in value:
                exact = edit_distance_within(query_string, s, threshold)
                if exact is not None and (best is None or exact < best):
                    best = exact
            if best is not None:
                report.matches.append(RangeMatch(tid=tid, difference=float(best)))

        report.io_time_ms = disk.stats.io_time_ms - io_before
        report.wall_s = time.perf_counter() - started
        report.matches.sort(key=lambda m: (m.difference, m.tid))
        return report

    def within_radius(
        self, attribute: str, query_value: Union[int, float], radius: float
    ) -> RangeReport:
        """All live tuples with a numeric value in ``[q − r, q + r]``."""
        attr = self.table.catalog.require(attribute)
        if not attr.is_numeric:
            raise QueryError(
                f"attribute {attribute!r} is text; use within_edit_distance"
            )
        if radius < 0:
            raise QueryError("radius must be non-negative")
        entry = self.index.entry(attr.attr_id)
        quantizer = entry.quantizer if entry is not None else None
        query_value = float(query_value)
        report = RangeReport()
        disk = self.table.disk
        io_before = disk.stats.io_time_ms
        started = time.perf_counter()

        scan = self.index.open_scan([attr.attr_id])
        for tid, ptr in scan:
            (payload,) = scan.payloads(tid)
            if ptr == DELETED_PTR:
                continue
            report.tuples_scanned += 1
            if payload is None:
                continue
            if quantizer is not None and quantizer.lower_bound(query_value, payload) > radius:
                continue
            report.candidates += 1
            record = self.table.read(tid)
            report.table_accesses += 1
            value = record.value(attr.attr_id)
            if is_numeric_value(value) and abs(query_value - value) <= radius:
                report.matches.append(
                    RangeMatch(tid=tid, difference=abs(query_value - value))
                )

        report.io_time_ms = disk.stats.io_time_ms - io_before
        report.wall_s = time.perf_counter() - started
        report.matches.sort(key=lambda m: (m.difference, m.tid))
        return report
