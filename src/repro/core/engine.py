"""Query processing: the parallel filter-and-refine plan (Sec. IV-A, Alg. 1).

The engine scans the tuple list and the queried attributes' vector lists in
a synchronized manner, computes a per-tuple lower bound of the similarity
distance from the approximation vectors, and — interleaved with the scan
("refining happens from time to time during the filtering process") —
random-accesses the table file for every tuple whose bound beats the
temporary result pool.

The same template drives the SII baseline (which yields content-blind
bounds) so the two systems differ only in what their filter knows, exactly
the comparison the paper makes.

Instrumentation: every search reports the counters behind the paper's
figures — table-file accesses (Fig. 8), filter vs. refine modeled I/O time
and measured wall-clock time (Figs. 9/15), and the overall per-query time
(Figs. 10–14, 16).  The same numbers feed the observability layer
(:mod:`repro.obs`): each search runs inside a ``query`` span with
``filter``/``refine`` children and lands per-engine counters and
latency histograms in the metrics registry.
"""

from __future__ import annotations

import logging
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.iva_file import DELETED_PTR, IVAFile
from repro.core.kernel import BLOCK_TUPLES, QueryKernel, validate_kernel_mode
from repro.core.pool import ResultPool
from repro.core.signature import QueryStringEncoder
from repro.errors import DeadlineExceeded, QueryError, ReproError
from repro.metrics.distance import DistanceFunction
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.profile import ProfileCollector, QueryProfile
from repro.obs.trace import Tracer, get_tracer
from repro.query import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.config import ExecutorConfig

logger = logging.getLogger(__name__)

#: What a filter yields per live tuple: (tid, per-term lower bounds, exact).
#: ``exact`` is True when every bound is the exact difference (e.g. the
#: tuple is ndf on every queried attribute), so refinement is unnecessary.
FilterItem = Tuple[int, List[float], bool]

#: Accepted values of the engines' ``fail_mode`` knob.
FAIL_MODES = ("raise", "degrade")

#: Candidates buffered between page-ordered refine flushes (v3 kernel).
#: Candidacy is re-checked at flush against the then-current pool, so
#: deferral never admits a tuple the inline path would have pruned — it
#: only sorts the surviving table reads by page before issuing them.
REFINE_BATCH = 64


def validate_fail_mode(mode: str) -> str:
    """Validate a ``fail_mode`` value (``"raise"`` or ``"degrade"``)."""
    if mode not in FAIL_MODES:
        raise QueryError(f"fail_mode must be one of {FAIL_MODES}, got {mode!r}")
    return mode


class BoundEvaluator:
    """Per-query machinery turning scanner payloads into distance bounds.

    Owns the query-string encoders and numeric quantizers for one query's
    terms and converts one tuple's vector-list payloads into ``(diffs,
    exact)`` — the per-term lower bounds of Algorithm 1 plus the all-ndf
    shortcut flag.  Extracted from the engine's filter loop so shard
    workers in :mod:`repro.parallel` evaluate bounds with exactly the same
    code path as the sequential scan.

    *position* maps attribute id → index into the payload row; ``None``
    means payloads align 1:1 with the query's terms (the single-query
    scan).  The batch engine passes the union-scan position map instead.

    *cache*, when given to :meth:`evaluate`, memoizes text bounds per tuple
    keyed ``(attr_id, query string)`` so batched queries sharing a term pay
    the signature comparison once (the batch engine's optimization).
    """

    def __init__(
        self,
        index: IVAFile,
        query: Query,
        distance: DistanceFunction,
        position: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.query = query
        n = index.config.n
        self._encoders: List[Optional[QueryStringEncoder]] = []
        self._quantizers = []
        for term in query.terms:
            if term.attr.is_text:
                self._encoders.append(QueryStringEncoder(str(term.value), n))
                self._quantizers.append(None)
            else:
                self._encoders.append(None)
                entry = index.entry(term.attr.attr_id)
                self._quantizers.append(entry.quantizer if entry is not None else None)
        self._ndf_penalty = distance.ndf_penalty
        if position is None:
            self._slots = list(range(len(query.terms)))
        else:
            self._slots = [position[term.attr.attr_id] for term in query.terms]

    def evaluate(
        self,
        payloads: Sequence[object],
        cache: Optional[dict] = None,
    ) -> Tuple[List[float], bool]:
        """One tuple's per-term lower bounds plus the all-ndf flag."""
        diffs: List[float] = []
        exact = True
        for idx, term in enumerate(self.query.terms):
            payload = payloads[self._slots[idx]]
            if payload is None:
                diffs.append(self._ndf_penalty)
                continue
            exact = False
            if term.attr.is_text:
                if cache is None:
                    diffs.append(
                        min(self._encoders[idx].lower_bound(sig) for sig in payload)
                    )
                    continue
                key = (term.attr.attr_id, str(term.value))
                bound = cache.get(key)
                if bound is None:
                    bound = min(self._encoders[idx].lower_bound(sig) for sig in payload)
                    cache[key] = bound
                diffs.append(bound)
            else:
                diffs.append(self._quantizers[idx].lower_bound(float(term.value), payload))
        return diffs, exact


@dataclass(frozen=True)
class QueryResult:
    """One answer tuple with its actual similarity distance."""

    tid: int
    distance: float


@dataclass
class SearchReport:
    """Results plus the full cost breakdown of one query."""

    results: List[QueryResult] = field(default_factory=list)
    #: Tuple-list elements filtered (live tuples considered).
    tuples_scanned: int = 0
    #: Random accesses to the table file (the refine step; paper Fig. 8).
    table_accesses: int = 0
    #: Tuples resolved exactly from the index (all-ndf shortcut).
    exact_shortcuts: int = 0
    #: Modeled I/O milliseconds spent scanning index lists.
    filter_io_ms: float = 0.0
    #: Modeled I/O milliseconds spent on table-file random accesses.
    refine_io_ms: float = 0.0
    #: Measured wall-clock seconds (``time.perf_counter``) in the filter
    #: (scan + estimate) phase.  Wall time, not CPU time: it includes any
    #: time this thread spends off-CPU.
    filter_wall_s: float = 0.0
    #: Measured wall-clock seconds (``time.perf_counter``) in the refine
    #: (fetch + exact distance) phase.
    refine_wall_s: float = 0.0
    #: True when part of the scan was lost and the results may be missing
    #: true top-k members (``fail_mode="degrade"`` only; a non-degraded
    #: report is always complete).
    degraded: bool = False
    #: Shard indices whose tid ranges could not be scanned (parallel path).
    lost_shards: List[int] = field(default_factory=list)
    #: Inclusive (first, last) tid ranges not covered by the scan.  The
    #: sequential path reports ``(next_tid, -1)`` — ``-1`` meaning
    #: "through the end of the scan" — since it cannot know where the
    #: aborted scan would have ended.
    lost_tid_ranges: List[Tuple[int, int]] = field(default_factory=list)
    #: True when the query's deadline budget expired and the scan was cut
    #: short.  Always accompanied by ``degraded=True`` (a deadline cut is
    #: one way a report degrades; storage faults are the other).
    deadline_hit: bool = False
    #: Structured EXPLAIN ANALYZE artifact; populated only when the engine
    #: was built with ``profile=True`` (``--explain-analyze`` on the CLI).
    profile: Optional[QueryProfile] = None

    @property
    def total_io_ms(self) -> float:
        """Modeled I/O total across both phases."""
        return self.filter_io_ms + self.refine_io_ms

    @property
    def total_wall_s(self) -> float:
        """Measured wall-clock total across both phases."""
        return self.filter_wall_s + self.refine_wall_s

    @property
    def filter_time_ms(self) -> float:
        """Modeled filter time: simulated I/O plus measured wall-clock."""
        return self.filter_io_ms + self.filter_wall_s * 1000.0

    @property
    def refine_time_ms(self) -> float:
        """Modeled refine time: simulated I/O plus measured wall-clock."""
        return self.refine_io_ms + self.refine_wall_s * 1000.0

    @property
    def query_time_ms(self) -> float:
        """Modeled per-query time (the paper's "time per query")."""
        return self.filter_time_ms + self.refine_time_ms


def observe_search(
    registry: MetricsRegistry, engine_name: str, report: SearchReport
) -> None:
    """Land one finished report's numbers in the metrics registry.

    Every engine (template subclasses, DST, the distributed wrappers' inner
    engines) funnels through here so the registry speaks one vocabulary:
    per-engine query/filter/refine latency histograms plus the paper's
    counters (tuples scanned, table accesses, exact shortcuts).
    """
    labels = {"engine": engine_name}
    registry.counter(
        "repro_queries_total", labels=labels, help="Completed top-k searches."
    ).inc()
    registry.counter(
        "repro_tuples_scanned_total",
        labels=labels,
        help="Live tuples considered by the filter phase.",
    ).inc(report.tuples_scanned)
    registry.counter(
        "repro_table_accesses_total",
        labels=labels,
        help="Random table-file accesses during refinement (paper Fig. 8).",
    ).inc(report.table_accesses)
    registry.counter(
        "repro_exact_shortcuts_total",
        labels=labels,
        help="Tuples resolved exactly from the index (all-ndf shortcut).",
    ).inc(report.exact_shortcuts)
    registry.histogram(
        "repro_query_time_ms",
        labels=labels,
        help="Modeled per-query time: simulated I/O plus wall-clock CPU.",
    ).observe(report.query_time_ms)
    registry.histogram(
        "repro_filter_time_ms",
        labels=labels,
        help="Modeled filter-phase time per query (paper Figs. 9/15).",
    ).observe(report.filter_time_ms)
    registry.histogram(
        "repro_refine_time_ms",
        labels=labels,
        help="Modeled refine-phase time per query (paper Figs. 9/15).",
    ).observe(report.refine_time_ms)
    if report.degraded:
        registry.counter(
            "repro_degraded_queries_total",
            labels=labels,
            help="Searches that completed with lost shards or a cut scan.",
        ).inc()
    if report.deadline_hit:
        registry.counter(
            "repro_deadline_exceeded_total",
            labels=labels,
            help="Searches cut short by an expired deadline budget.",
        ).inc()


def trace_phases(tracer: Tracer, span, report: SearchReport) -> None:
    """Attach ``filter``/``refine`` child spans for a finished report.

    The two phases interleave during the scan ("refining happens from time
    to time during the filtering process"), so they are recorded as
    synthetic spans whose durations are the accumulated per-phase wall
    totals — they reconcile exactly with the report.
    """
    tracer.record(
        "filter",
        report.filter_wall_s * 1000.0,
        io_ms=report.filter_io_ms,
        tuples_scanned=report.tuples_scanned,
        exact_shortcuts=report.exact_shortcuts,
    )
    tracer.record(
        "refine",
        report.refine_wall_s * 1000.0,
        io_ms=report.refine_io_ms,
        table_accesses=report.table_accesses,
    )
    span.attrs["modeled_ms"] = report.query_time_ms
    span.attrs["results"] = len(report.results)


class FilterAndRefineEngine(ABC):
    """Template for scan-based engines: Algorithm 1 around a filter source."""

    #: Engine label used in benchmark tables.
    name = "engine"

    #: Whether this engine's filter can be sharded by :mod:`repro.parallel`.
    #: Engines that cannot (the baselines) still accept the ``parallelism``
    #: knob and degrade gracefully to the sequential path.
    supports_parallel = False

    def __init__(
        self,
        table,
        distance: Optional[DistanceFunction] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        parallelism: Optional[int] = None,
        executor: Optional["ExecutorConfig"] = None,
        kernel: str = "scalar",
        fail_mode: str = "raise",
        profile: bool = False,
        kernel_cache=None,
        scan_end_element: Optional[int] = None,
        shard_planner=None,
    ) -> None:
        self.table = table
        self.distance = distance or DistanceFunction()
        #: Optional shared :class:`~repro.core.kernel.KernelCache`: compiled
        #: query-term artifacts are reused across searches (the serving
        #: daemon injects one per index snapshot so Zipfian traffic skips
        #: recompilation).  None compiles fresh per query.
        self.kernel_cache = kernel_cache
        #: Optional scan watermark: only the first N tuple-list elements
        #: are visible to this engine's scans (snapshot-isolated reads).
        #: None scans everything committed at scan-open time.
        self.scan_end_element = scan_end_element
        #: Optional pre-built :class:`~repro.parallel.shards.ShardPlanner`
        #: shared across searches; the parallel executor uses it instead of
        #: building (and paying the plan I/O of) its own.
        self.shard_planner = shard_planner
        #: When True every search carries a :class:`ProfileCollector` and
        #: the report gains a ``profile`` (EXPLAIN ANALYZE) artifact.  Off
        #: by default: the hot loops then pay one None-check per tuple.
        self.profile = profile
        #: The in-flight search's collector; filter implementations feed
        #: their per-tuple payload probes through it.  ``search`` is not
        #: reentrant per engine instance, so one slot suffices.
        self._collector: Optional[ProfileCollector] = None
        #: Scan-failure policy: ``"raise"`` propagates storage errors
        #: (after any sequential fallback); ``"degrade"`` completes the
        #: query with what survived and flags ``SearchReport.degraded``.
        self.fail_mode = validate_fail_mode(fail_mode)
        #: Filter evaluation strategy: ``"scalar"`` (per-tuple ``move_to``
        #: plus per-term arithmetic) or ``"block"`` (block-at-a-time decode
        #: through a compiled :class:`~repro.core.kernel.QueryKernel`).
        #: Both return bit-identical answers; engines without a block
        #: filter implementation run the scalar path regardless.
        self.kernel = validate_kernel_mode(kernel)
        #: When the filter's bounds are exact (all queried attributes ndf),
        #: insert the distance directly instead of fetching the tuple.  The
        #: answer set is identical; only the access count changes.
        self.skip_exact = True
        #: Observability destinations; None means the process-global ones.
        self.registry = registry
        self.tracer = tracer
        if executor is None and parallelism is not None:
            from repro.parallel.config import ExecutorConfig

            executor = ExecutorConfig(workers=parallelism)
        #: Parallel-execution configuration; None means always sequential.
        self.executor = executor

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    def _tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else get_tracer()

    @abstractmethod
    def _filter(self, query: Query, distance: DistanceFunction) -> Iterator[FilterItem]:
        """Yield (tid, per-term lower bounds, exact) for every live tuple."""

    def _filter_estimates(
        self, query: Query, distance: DistanceFunction
    ) -> Iterator[Tuple[int, float, bool]]:
        """Yield (tid, combined distance estimate, exact) per live tuple.

        The default is the scalar path — per-term bounds from
        :meth:`_filter` combined tuple-by-tuple.  Engines with a block
        filter kernel override this to decode and evaluate whole blocks
        while yielding the exact same estimates in the exact same order.
        """
        for tid, diffs, exact in self._filter(query, distance):
            yield tid, distance.combine_bounds(query, diffs), exact

    def prepare_query(self, query: Union[Query, Mapping[str, object]]) -> Query:
        """Coerce a mapping into a validated :class:`Query`."""
        if isinstance(query, Query):
            return query
        if isinstance(query, Mapping):
            return Query.from_dict(self.table.catalog, query)
        raise QueryError(f"cannot interpret {query!r} as a query")

    def search(
        self,
        query: Union[Query, Mapping[str, object]],
        k: int = 10,
        distance: Optional[DistanceFunction] = None,
        deadline_s: Optional[float] = None,
    ) -> SearchReport:
        """Run a top-k structured similarity query.

        Dispatches to the parallel executor when one is configured (and the
        engine supports sharded filtering); otherwise — or when the pool
        cannot start and fallback is enabled — runs Algorithm 1 inline.
        Both paths return bit-identical results (see :mod:`repro.parallel`).

        *deadline_s* is a wall-clock budget for this search.  When it
        expires mid-scan, ``fail_mode="degrade"`` returns the partial
        answer flagged ``degraded``/``deadline_hit`` (candidates already
        found are still refined — never a silently-wrong full answer);
        ``fail_mode="raise"`` raises :class:`~repro.errors.DeadlineExceeded`.
        """
        query = self.prepare_query(query)
        deadline = (
            time.perf_counter() + deadline_s if deadline_s is not None else None
        )
        config = self.executor
        if (
            config is not None
            and self.supports_parallel
            and config.effective_workers() > 1
        ):
            from repro.parallel.executor import ParallelExecutionError, parallel_search

            try:
                return parallel_search(
                    self, query, k=k, distance=distance, deadline=deadline
                )
            except ParallelExecutionError as exc:
                if not config.fallback:
                    raise
                self._note_parallel_fallback(exc)
        return self._sequential_search(query, k, distance, deadline=deadline)

    def _note_parallel_fallback(self, exc: Exception) -> None:
        """Record an automatic degradation to the sequential path."""
        logger.warning("parallel execution failed, running sequentially: %s", exc)
        self._registry().counter(
            "repro_parallel_fallbacks_total",
            labels={"engine": self.name},
            help="Searches that fell back to the sequential path.",
        ).inc()

    def _sequential_search(
        self,
        query: Query,
        k: int = 10,
        distance: Optional[DistanceFunction] = None,
        deadline: Optional[float] = None,
    ) -> SearchReport:
        """The inline (single-threaded) Algorithm 1 loop.

        *deadline* is an absolute ``time.perf_counter()`` instant; the
        deadline check is per tuple and only paid when a deadline is set.
        """
        dist = distance or self.distance
        pool = ResultPool(k)
        report = SearchReport()
        disk = self.table.disk
        tracer = self._tracer()
        collector = ProfileCollector.for_query(query) if self.profile else None
        self._collector = collector

        with tracer.span(
            "query",
            engine=self.name,
            k=k,
            attr_ids=list(query.attribute_ids()),
        ) as span:
            start_io = disk.stats.io_time_ms
            start_wall = time.perf_counter()
            refine_io = 0.0
            refine_wall = 0.0

            # Page-batched refine (v3): buffer surviving candidates and
            # issue their table reads sorted by file offset.  Deferred
            # tuples are re-checked against the pool at flush; losing the
            # re-check implies the tuple cannot be in the final top-k
            # (actual >= estimate >= pool worst under the (distance, tid)
            # tie order), so the answer set is identical to inline refine.
            batched = self.kernel == "v3"
            refine_batch: List[Tuple[int, float]] = []
            locate = self.table.locate

            def flush_refines() -> None:
                nonlocal refine_io, refine_wall
                if not refine_batch:
                    return
                pending = sorted(refine_batch, key=lambda item: locate(item[0])[0])
                refine_batch.clear()
                for tid, estimated in pending:
                    if not pool.is_candidate(estimated, tid):
                        if collector is not None:
                            collector.on_pruned()
                        continue
                    refine_io_before = disk.stats.io_time_ms
                    refine_wall_before = time.perf_counter()
                    record = self.table.read(tid)
                    actual = dist.actual(query, record)
                    pool.insert(tid, actual)
                    refine_io += disk.stats.io_time_ms - refine_io_before
                    refine_wall += time.perf_counter() - refine_wall_before
                    report.table_accesses += 1
                    if collector is not None:
                        collector.on_candidate()
                        collector.on_refined(estimated, actual)

            last_tid = -1
            try:
                for tid, estimated, exact in self._filter_estimates(query, dist):
                    if deadline is not None and time.perf_counter() > deadline:
                        raise DeadlineExceeded(
                            f"deadline expired after tid {last_tid}"
                        )
                    last_tid = tid
                    report.tuples_scanned += 1
                    if exact and self.skip_exact:
                        pool.insert(tid, estimated)
                        report.exact_shortcuts += 1
                        if collector is not None:
                            collector.on_exact()
                        continue
                    if not pool.is_candidate(estimated, tid):
                        if collector is not None:
                            collector.on_pruned()
                        continue
                    if batched:
                        refine_batch.append((tid, estimated))
                        if len(refine_batch) >= REFINE_BATCH:
                            flush_refines()
                        continue
                    refine_io_before = disk.stats.io_time_ms
                    refine_wall_before = time.perf_counter()
                    record = self.table.read(tid)
                    actual = dist.actual(query, record)
                    pool.insert(tid, actual)
                    refine_io += disk.stats.io_time_ms - refine_io_before
                    refine_wall += time.perf_counter() - refine_wall_before
                    report.table_accesses += 1
                    if collector is not None:
                        collector.on_candidate()
                        collector.on_refined(estimated, actual)
                flush_refines()
            except ReproError as exc:
                if self.fail_mode != "degrade":
                    raise
                # Degrade-don't-die: keep what the scan delivered and
                # account the uncovered tail (-1 = through end of scan).
                report.degraded = True
                report.deadline_hit = isinstance(exc, DeadlineExceeded)
                report.lost_tid_ranges.append((last_tid + 1, -1))
                logger.warning(
                    "scan failed after tid %d; returning degraded results: %s",
                    last_tid,
                    exc,
                )
                try:
                    # Best effort: candidates found before the failure are
                    # still refined (the docstring's degraded-answer promise).
                    flush_refines()
                except ReproError:
                    logger.warning("degraded refine flush failed; dropping batch")
            finally:
                self._collector = None

            total_io = disk.stats.io_time_ms - start_io
            total_wall = time.perf_counter() - start_wall
            report.refine_io_ms = refine_io
            report.refine_wall_s = refine_wall
            report.filter_io_ms = total_io - refine_io
            report.filter_wall_s = total_wall - refine_wall
            report.results = [
                QueryResult(tid=entry.tid, distance=entry.distance)
                for entry in pool.results()
            ]
            if collector is not None:
                report.profile = collector.build(
                    report,
                    query=query,
                    index=getattr(self, "index", None),
                    engine=self.name,
                    kernel=self.kernel,
                    fail_mode=self.fail_mode,
                    metric=getattr(dist.metric, "name", ""),
                    k=k,
                )
            trace_phases(tracer, span, report)
        observe_search(self._registry(), self.name, report)
        return report


class IVAEngine(FilterAndRefineEngine):
    """Algorithm 1 over the iVA-file: content-conscious filtering."""

    name = "iVA"
    supports_parallel = True

    def __init__(
        self,
        table,
        index: IVAFile,
        distance: Optional[DistanceFunction] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        parallelism: Optional[int] = None,
        executor: Optional["ExecutorConfig"] = None,
        kernel: str = "scalar",
        fail_mode: str = "raise",
        profile: bool = False,
        kernel_cache=None,
        scan_end_element: Optional[int] = None,
        shard_planner=None,
    ) -> None:
        super().__init__(
            table,
            distance,
            registry=registry,
            tracer=tracer,
            parallelism=parallelism,
            executor=executor,
            kernel=kernel,
            fail_mode=fail_mode,
            profile=profile,
            kernel_cache=kernel_cache,
            scan_end_element=scan_end_element,
            shard_planner=shard_planner,
        )
        self.index = index

    def _filter(self, query: Query, distance: DistanceFunction) -> Iterator[FilterItem]:
        attr_ids = query.attribute_ids()
        scan = self.index.open_scan(attr_ids, end_element=self.scan_end_element)
        evaluator = BoundEvaluator(self.index, query, distance)
        collector = self._collector

        for tid, ptr in scan:
            payloads = scan.payloads(tid)
            # Probed before the tombstone check on purpose: the scan
            # decodes the payload row either way, and the per-attribute
            # entry counts then agree with the block path, which decodes
            # whole columns tombstones included.
            if collector is not None:
                collector.on_payloads(payloads)
            if ptr == DELETED_PTR:
                continue
            diffs, exact = evaluator.evaluate(payloads)
            yield tid, diffs, exact

    def _filter_estimates(
        self, query: Query, distance: DistanceFunction
    ) -> Iterator[Tuple[int, float, bool]]:
        """Scalar or block filtering, per the engine's ``kernel`` mode.

        The block path compiles the query once (``kernel.compile`` span),
        then per tuple-list block drives every scanner's ``move_block`` and
        evaluates the decoded columns through the kernel's lookup tables
        (accumulated into one ``kernel.block`` span).  Estimates are
        bit-identical to the scalar path and arrive in the same tid order.
        """
        if self.kernel not in ("block", "v3"):
            yield from super()._filter_estimates(query, distance)
            return
        use_v3 = self.kernel == "v3"
        attr_ids = query.attribute_ids()
        scan = self.index.open_scan(attr_ids, end_element=self.scan_end_element)
        tracer = self._tracer()
        registry = self._registry()
        compile_start = time.perf_counter()
        compiled = QueryKernel.compile(
            self.index, query, distance, cache=self.kernel_cache
        )
        tracer.record(
            "kernel.compile",
            (time.perf_counter() - compile_start) * 1000.0,
            terms=len(compiled.terms),
            table_entries=compiled.table_entries,
        )
        registry.counter(
            "repro_kernel_compiles_total",
            labels={"engine": self.name},
            help="Query kernels compiled for block-at-a-time filtering.",
        ).inc()
        blocks = 0
        tuples = 0
        segments_total = 0
        block_wall = 0.0
        collector = self._collector
        for tids, ptrs in scan.blocks(BLOCK_TUPLES):
            block_start = time.perf_counter()
            if use_v3:
                segments = scan.segment_blocks(tids)
                estimates, exacts = compiled.evaluate_segments(segments, len(tids))
            else:
                columns = scan.payload_blocks(tids)
                estimates, exacts = compiled.evaluate_block(columns, len(tids))
            block_wall += time.perf_counter() - block_start
            blocks += 1
            if use_v3:
                segments_total += len(segments)
                if collector is not None:
                    collector.on_segments(segments, len(tids))
            elif collector is not None:
                collector.on_block(columns, len(tids))
            for i, tid in enumerate(tids):
                if ptrs[i] == DELETED_PTR:
                    continue
                tuples += 1
                yield tid, estimates[i], exacts[i]
        tracer.record("kernel.block", block_wall * 1000.0, blocks=blocks, tuples=tuples)
        registry.counter(
            "repro_kernel_blocks_total",
            labels={"engine": self.name},
            help="Tuple-list blocks decoded and evaluated by the block kernel.",
        ).inc(blocks)
        if use_v3:
            registry.counter(
                "repro_kernel_segments_total",
                labels={"engine": self.name},
                help="Vector-list segments decoded columnar by the v3 kernel.",
            ).inc(segments_total)
