"""Scanning pointers over vector lists (paper Sec. IV-A).

Query processing scans the tuple list and the vector lists of the queried
attributes "in a synchronized manner": each list has a scanning pointer; the
tuple list's pointer advances one element at a time, and each vector list's
pointer is asked to ``MoveTo(currentTuple)``.

Tid-based layouts (Types I and II) implement the paper's *freeze* semantics:
when the list holds no element for the current tuple, the pointer stops at
the next larger tid (or the list tail) and reports ndf until the current
tuple catches up.  Positional layouts (Types III and IV) consume exactly one
element per tuple-list element; identification is by position, so the engine
must call ``move_to`` once for every tuple-list element — including
tombstoned ones — in order.

``move_to`` returns the tuple's payload on the attribute:

* text lists — a list of :class:`~repro.core.signature.Signature`
  (empty ⇒ ndf, returned as ``None``),
* numeric lists — an ``int`` slice code, or ``None`` for ndf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.numeric import NumericQuantizer
from repro.core.signature import Signature, SignatureScheme
from repro.errors import IndexError_
from repro.storage.pager import BufferedReader

TID_BYTES = 4
NUM_BYTES = 1


@dataclass(frozen=True)
class ResumePoint:
    """Everything a fresh scanner needs to resume a scan mid-list.

    The fixed-width (``raw``) layouts resume from a byte offset alone, but
    delta-coded lists (``repro.codec.compressed``) store each element
    relative to its predecessor, so a resume point also carries:

    * ``prev_key`` — the decoding base at the offset: the last tid decoded
      before it (tid-based layouts) or the last *defined* tuple position
      (compressed positional layouts); ``-1`` at the list head;
    * ``position`` — the tuple-list element position the scan stands at,
      which positional layouts need to re-anchor their element counter.
    """

    offset: int = 0
    prev_key: int = -1
    position: int = 0


#: Resume point for a scan starting at the head of a list.
START = ResumePoint()


class VectorListScanner:
    """Base scanning pointer; concrete layouts override :meth:`move_to`."""

    def __init__(self, reader: BufferedReader) -> None:
        self._reader = reader

    def move_to(self, tid: int):  # pragma: no cover - abstract
        """Advance the pointer to *tid*; see the class docstring."""
        raise NotImplementedError

    def move_block(self, tids: List[int]) -> List[object]:
        """Advance through one block of tids, returning a payload column.

        The block filter kernel's decode API: one call per tuple-list block
        instead of one per tuple, with payloads in the kernel's flat form —
        text payloads are lists of bare ``(stored_length, bits)`` pairs
        (no :class:`Signature` objects), numeric payloads are slice codes,
        ndf stays ``None``.  The returned column aligns 1:1 with *tids*.

        This default adapts any :meth:`move_to` implementation (third-party
        codec scanners inherit block support for free); the built-in
        layouts override it with loops that skip per-element method
        dispatch and ``Signature`` construction.
        """
        column: List[object] = []
        for tid in tids:
            payload = self.move_to(tid)
            if type(payload) is list:
                payload = [(sig.length, sig.bits) for sig in payload]
            column.append(payload)
        return column

    def checkpoint_offset(self) -> int:
        """Byte offset at which a fresh scanner resumes this pointer's state.

        Recorded *between* ``move_to`` calls: the offset points at the start
        of the next unconsumed list element, so a scanner constructed with
        this offset as its reader start continues the scan exactly where
        this one stands.  ``repro.parallel`` uses these as shard entry
        points (one sequential planning pass records a checkpoint per shard
        boundary; shard workers then scan only their own slice).
        """
        return self._reader.position

    def checkpoint(self, position: int = 0) -> ResumePoint:
        """Full resume state at the current pointer position.

        *position* is the tuple-list element position the scan stands at
        (the scanner itself does not track it for fixed-width layouts; the
        planner passes it in).  Codec scanners that need a decoding base
        override this to fill ``prev_key``.
        """
        return ResumePoint(offset=self.checkpoint_offset(), position=position)


class _TidBasedScanner(VectorListScanner):
    """Shared freeze-semantics machinery for Types I and II."""

    def __init__(self, reader: BufferedReader) -> None:
        super().__init__(reader)
        self._pending: Optional[int] = None
        self._load_next()

    def _load_next(self) -> None:
        if self._reader.exhausted():
            self._pending = None
        else:
            self._pending = int.from_bytes(self._reader.read(TID_BYTES), "little")

    @property
    def pending_tid(self) -> Optional[int]:
        """The tid the pointer is frozen at (None at the list tail)."""
        return self._pending

    def checkpoint_offset(self) -> int:
        """Start of the pending element (its tid bytes are re-read on resume)."""
        if self._pending is None:
            return self._reader.position
        return self._reader.position - TID_BYTES


class TextTypeIScanner(_TidBasedScanner):
    """Type I text layout: ``<tid, vector>`` per string, sorted by tid;
    consecutive elements may repeat a tid for multi-string values."""

    def __init__(self, reader: BufferedReader, scheme: SignatureScheme) -> None:
        self._scheme = scheme
        super().__init__(reader)

    def move_to(self, tid: int) -> Optional[List[Signature]]:
        """Advance the pointer to *tid*; see the class docstring."""
        out: List[Signature] = []
        while self._pending is not None and self._pending <= tid:
            signature = self._scheme.read(self._reader)
            if self._pending == tid:
                out.append(signature)
            self._load_next()
        return out or None

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: same pointer walk, bare ``(length, bits)`` pairs."""
        read_raw = self._scheme.read_raw
        reader = self._reader
        column: List[object] = []
        for tid in tids:
            pairs = None
            while self._pending is not None and self._pending <= tid:
                pair = read_raw(reader)
                if self._pending == tid:
                    if pairs is None:
                        pairs = [pair]
                    else:
                        pairs.append(pair)
                self._load_next()
            column.append(pairs)
        return column


class TextTypeIIScanner(_TidBasedScanner):
    """Type II text layout: ``<tid, num, vector1, vector2, …>``."""

    def __init__(self, reader: BufferedReader, scheme: SignatureScheme) -> None:
        self._scheme = scheme
        super().__init__(reader)

    def move_to(self, tid: int) -> Optional[List[Signature]]:
        """Advance the pointer to *tid*; see the class docstring."""
        out: List[Signature] = []
        while self._pending is not None and self._pending <= tid:
            count = self._reader.read(NUM_BYTES)[0]
            signatures = [self._scheme.read(self._reader) for _ in range(count)]
            if self._pending == tid:
                out.extend(signatures)
            self._load_next()
        return out or None

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: same pointer walk, bare ``(length, bits)`` pairs."""
        read_raw = self._scheme.read_raw
        reader = self._reader
        column: List[object] = []
        for tid in tids:
            pairs = None
            while self._pending is not None and self._pending <= tid:
                count = reader.read(NUM_BYTES)[0]
                decoded = [read_raw(reader) for _ in range(count)]
                if self._pending == tid:
                    if pairs is None:
                        pairs = decoded
                    else:
                        pairs.extend(decoded)
                self._load_next()
            column.append(pairs or None)
        return column


class TextTypeIIIScanner(VectorListScanner):
    """Type III text layout: positional ``<num, vectors…>`` for every tuple."""

    def __init__(self, reader: BufferedReader, scheme: SignatureScheme) -> None:
        super().__init__(reader)
        self._scheme = scheme

    def move_to(self, tid: int) -> Optional[List[Signature]]:
        """Advance the pointer to *tid*; see the class docstring."""
        if self._reader.exhausted():
            raise IndexError_(
                "Type III vector list ran out of elements before the tuple "
                "list did — the index is inconsistent with its table"
            )
        count = self._reader.read(NUM_BYTES)[0]
        if count == 0:
            return None
        return [self._scheme.read(self._reader) for _ in range(count)]

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: one positional element per tid, bare pairs."""
        read_raw = self._scheme.read_raw
        reader = self._reader
        column: List[object] = []
        for _tid in tids:
            if reader.exhausted():
                raise IndexError_(
                    "Type III vector list ran out of elements before the "
                    "tuple list did — the index is inconsistent with its table"
                )
            count = reader.read(NUM_BYTES)[0]
            if count == 0:
                column.append(None)
            else:
                column.append([read_raw(reader) for _ in range(count)])
        return column


class NumericTypeIScanner(_TidBasedScanner):
    """Type I numeric layout: ``<tid, vector>`` per defined tuple."""

    def __init__(self, reader: BufferedReader, quantizer: NumericQuantizer) -> None:
        self._quantizer = quantizer
        super().__init__(reader)

    def move_to(self, tid: int) -> Optional[int]:
        """Advance the pointer to *tid*; see the class docstring."""
        out: Optional[int] = None
        width = self._quantizer.vector_bytes
        while self._pending is not None and self._pending <= tid:
            code = self._quantizer.decode_bytes(self._reader.read(width))
            if self._pending == tid:
                out = code
            self._load_next()
        return out

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: same pointer walk, one code (or None) per tid."""
        width = self._quantizer.vector_bytes
        decode = self._quantizer.decode_bytes
        reader = self._reader
        column: List[object] = []
        for tid in tids:
            out = None
            while self._pending is not None and self._pending <= tid:
                code = decode(reader.read(width))
                if self._pending == tid:
                    out = code
                self._load_next()
            column.append(out)
        return column


class NumericTypeIVScanner(VectorListScanner):
    """Type IV numeric layout: positional ``<vector>`` with a reserved ndf
    code, one element per tuple."""

    def __init__(self, reader: BufferedReader, quantizer: NumericQuantizer) -> None:
        super().__init__(reader)
        if quantizer.ndf_code is None:
            raise IndexError_("Type IV layout requires a reserved ndf code")
        self._quantizer = quantizer

    def move_to(self, tid: int) -> Optional[int]:
        """Advance the pointer to *tid*; see the class docstring."""
        if self._reader.exhausted():
            raise IndexError_(
                "Type IV vector list ran out of elements before the tuple "
                "list did — the index is inconsistent with its table"
            )
        code = self._quantizer.decode_bytes(
            self._reader.read(self._quantizer.vector_bytes)
        )
        if code == self._quantizer.ndf_code:
            return None
        return code

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: one positional code per tid, ndf mapped to None."""
        quantizer = self._quantizer
        width = quantizer.vector_bytes
        decode = quantizer.decode_bytes
        ndf_code = quantizer.ndf_code
        reader = self._reader
        column: List[object] = []
        for _tid in tids:
            if reader.exhausted():
                raise IndexError_(
                    "Type IV vector list ran out of elements before the "
                    "tuple list did — the index is inconsistent with its table"
                )
            code = decode(reader.read(width))
            column.append(None if code == ndf_code else code)
        return column
