"""Scanning pointers over vector lists (paper Sec. IV-A).

Query processing scans the tuple list and the vector lists of the queried
attributes "in a synchronized manner": each list has a scanning pointer; the
tuple list's pointer advances one element at a time, and each vector list's
pointer is asked to ``MoveTo(currentTuple)``.

Tid-based layouts (Types I and II) implement the paper's *freeze* semantics:
when the list holds no element for the current tuple, the pointer stops at
the next larger tid (or the list tail) and reports ndf until the current
tuple catches up.  Positional layouts (Types III and IV) consume exactly one
element per tuple-list element; identification is by position, so the engine
must call ``move_to`` once for every tuple-list element — including
tombstoned ones — in order.

``move_to`` returns the tuple's payload on the attribute:

* text lists — a list of :class:`~repro.core.signature.Signature`
  (empty ⇒ ndf, returned as ``None``),
* numeric lists — an ``int`` slice code, or ``None`` for ndf.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import fastpath
from repro.core.numeric import NumericQuantizer
from repro.core.segment import ColumnSegment, NumericSegment, TextSegment
from repro.core.signature import Signature, SignatureScheme
from repro.errors import IndexError_
from repro.storage.pager import BufferedReader

TID_BYTES = 4
NUM_BYTES = 1

#: Elements per skip-table segment for tid-based raw lists (Sec. IV-A prep
#: for skip-based MoveTo: coarse enough to keep the table tiny, fine enough
#: that a jump skips real decode work).
SKIP_SEGMENT_ELEMENTS = 256

#: Entries per bulk read when the raw Type I numeric segment decoder slurps
#: fixed-width ``<tid, code>`` records ahead of the scan cursor.
_SEG_READ_ENTRIES = 1024


class _ByteRun:
    """Scanner-local parse cursor over bulk reader chunks.

    The text segment decoders' fastpath: instead of two
    :class:`BufferedReader` calls per signature (length byte, then bits),
    slurp large chunks into a local ``bytes`` object and crack fields
    with plain indexing.  Chunks may overshoot the current block — the
    overshoot parks here between ``decode_segment`` calls, which is one
    of the reasons the scalar and columnar entry points must not be
    mixed on a single scanner instance.
    """

    __slots__ = ("_reader", "buf", "pos")

    _CHUNK = 32 * 1024

    def __init__(self, reader: BufferedReader) -> None:
        self._reader = reader
        self.buf = b""
        self.pos = 0

    def logical_position(self) -> int:
        """Absolute offset of the next unparsed byte (reader minus carry)."""
        return self._reader.position - (len(self.buf) - self.pos)

    def exhausted(self) -> bool:
        return self.pos >= len(self.buf) and self._reader.exhausted()

    def ensure(self, length: int) -> None:
        """Buffer at least *length* unparsed bytes ahead of :attr:`pos`.

        A range too short to supply them raises the reader's own
        ``StorageError`` (the exact failure the scalar walk would hit).
        """
        have = len(self.buf) - self.pos
        if have >= length:
            return
        reader = self._reader
        need = length - have
        fetch = min(max(need, self._CHUNK), reader.remaining())
        if fetch < need:
            reader.read(need)  # raises: read past range end
        self.buf = self.buf[self.pos :] + reader.read(fetch)
        self.pos = 0

    def jump_to(self, offset: int) -> None:
        """Move the parse cursor to absolute *offset* (forward only)."""
        delta = offset - self.logical_position()
        if delta <= 0:
            return
        if delta <= len(self.buf) - self.pos:
            self.pos += delta
        else:
            self._reader.skip(offset - self._reader.position)
            self.buf = b""
            self.pos = 0


@dataclass(frozen=True)
class ResumePoint:
    """Everything a fresh scanner needs to resume a scan mid-list.

    The fixed-width (``raw``) layouts resume from a byte offset alone, but
    delta-coded lists (``repro.codec.compressed``) store each element
    relative to its predecessor, so a resume point also carries:

    * ``prev_key`` — the decoding base at the offset: the last tid decoded
      before it (tid-based layouts) or the last *defined* tuple position
      (compressed positional layouts); ``-1`` at the list head;
    * ``position`` — the tuple-list element position the scan stands at,
      which positional layouts need to re-anchor their element counter.
    """

    offset: int = 0
    prev_key: int = -1
    position: int = 0


#: Resume point for a scan starting at the head of a list.
START = ResumePoint()


@dataclass(frozen=True)
class SkipTable:
    """Per-segment tid fences over a tid-based vector list.

    Built at index (re)build time from the raw codec's fixed-width
    arithmetic: the list is cut into runs of :data:`SKIP_SEGMENT_ELEMENTS`
    elements; ``first_tids[i]``/``last_tids[i]`` bound segment *i*'s tid
    range and ``offsets[i]`` is its absolute byte offset.  A frozen
    pointer whose pending tid trails the scan cursor can then jump over
    every segment whose tid range cannot intersect the cursor — the prep
    step the ROADMAP's Elias–Fano (skip-based MoveTo) item builds on.

    Skip tables are advisory: a missing or stale table (dropped on
    append) only costs the skip, never correctness.
    """

    first_tids: Sequence[int]
    last_tids: Sequence[int]
    offsets: Sequence[int]
    #: Exclusive end offset of the list (jump target when every segment
    #: falls short of the cursor).
    end_offset: int

    def seek_offset(self, target_tid: int, current_offset: int) -> Optional[int]:
        """Forward jump target skipping segments wholly below *target_tid*.

        Returns an absolute byte offset strictly greater than
        *current_offset*, or ``None`` when no whole segment ahead of the
        cursor can be skipped.
        """
        index = bisect_left(self.last_tids, target_tid)
        offset = (
            self.offsets[index] if index < len(self.offsets) else self.end_offset
        )
        if offset <= current_offset:
            return None
        return offset


class VectorListScanner:
    """Base scanning pointer; concrete layouts override :meth:`move_to`."""

    def __init__(self, reader: BufferedReader) -> None:
        self._reader = reader

    def move_to(self, tid: int):  # pragma: no cover - abstract
        """Advance the pointer to *tid*; see the class docstring."""
        raise NotImplementedError

    def move_block(self, tids: List[int]) -> List[object]:
        """Advance through one block of tids, returning a payload column.

        The block filter kernel's decode API: one call per tuple-list block
        instead of one per tuple, with payloads in the kernel's flat form —
        text payloads are lists of bare ``(stored_length, bits)`` pairs
        (no :class:`Signature` objects), numeric payloads are slice codes,
        ndf stays ``None``.  The returned column aligns 1:1 with *tids*.

        This default adapts any :meth:`move_to` implementation (third-party
        codec scanners inherit block support for free); the built-in
        layouts override it with loops that skip per-element method
        dispatch and ``Signature`` construction.
        """
        column: List[object] = []
        for tid in tids:
            payload = self.move_to(tid)
            if type(payload) is list:
                payload = [(sig.length, sig.bits) for sig in payload]
            column.append(payload)
        return column

    def decode_segment(self, tids: List[int]):
        """Advance through one block of tids, returning a columnar segment.

        The v3 kernel's decode API: like :meth:`move_block` but the result
        is a :mod:`repro.core.segment` object the kernel can evaluate with
        array-wide gathers.  This default wraps :meth:`move_block` in a
        :class:`~repro.core.segment.ColumnSegment`, so any scanner —
        third-party codecs included — participates in the v3 path with
        scalar-identical results; the built-in layouts override it with
        columnar decoders when numpy is importable.

        A scanner instance must be driven through *either* the
        ``move_to``/``move_block`` API *or* ``decode_segment``, never a
        mix: columnar decoders may read ahead of the logical pointer and
        park the overshoot in segment-local state the scalar entry points
        do not consult.
        """
        return ColumnSegment(self.move_block(tids))

    def checkpoint_offset(self) -> int:
        """Byte offset at which a fresh scanner resumes this pointer's state.

        Recorded *between* ``move_to`` calls: the offset points at the start
        of the next unconsumed list element, so a scanner constructed with
        this offset as its reader start continues the scan exactly where
        this one stands.  ``repro.parallel`` uses these as shard entry
        points (one sequential planning pass records a checkpoint per shard
        boundary; shard workers then scan only their own slice).
        """
        return self._reader.position

    def checkpoint(self, position: int = 0) -> ResumePoint:
        """Full resume state at the current pointer position.

        *position* is the tuple-list element position the scan stands at
        (the scanner itself does not track it for fixed-width layouts; the
        planner passes it in).  Codec scanners that need a decoding base
        override this to fill ``prev_key``.
        """
        return ResumePoint(offset=self.checkpoint_offset(), position=position)


class _TidBasedScanner(VectorListScanner):
    """Shared freeze-semantics machinery for Types I and II."""

    def __init__(
        self, reader: BufferedReader, skip: Optional[SkipTable] = None
    ) -> None:
        super().__init__(reader)
        self._skip = skip
        self._pending: Optional[int] = None
        # Columnar-decode carry: the bulk parse cursor plus the tid it
        # has parsed but not yet consumed (decode_segment only).
        self._run: Optional[_ByteRun] = None
        self._seg_pending: Optional[int] = None
        self._load_next()

    def _load_next(self) -> None:
        if self._reader.exhausted():
            self._pending = None
        else:
            self._pending = int.from_bytes(self._reader.read(TID_BYTES), "little")

    def _maybe_skip(self, target_tid: int) -> None:
        """Jump over whole segments that cannot intersect the scan cursor.

        Called at the head of :meth:`move_block`/``decode_segment`` with
        the block's first tid.  Every skipped element's tid is strictly
        below *target_tid*, so the scalar walk would have consumed it
        without producing a payload — the jump is free of semantics, it
        only spares the decode.
        """
        skip = self._skip
        if skip is None or self._pending is None or self._pending >= target_tid:
            return
        offset = skip.seek_offset(target_tid, self._reader.position - TID_BYTES)
        if offset is None or offset <= self._reader.position - TID_BYTES:
            return
        self._reader.skip(offset - self._reader.position)
        self._pending = None
        self._load_next()

    def _segment_run(self, target_tid: int):
        """Bulk parse cursor + pending tid for the columnar text decoders.

        First call folds the scalar ``_pending`` (tid read, payload not)
        into run-local state; later calls resume from the carry.  A skip
        table, when present, jumps the cursor over whole segments below
        *target_tid* before any payload is parsed.
        """
        run = self._run
        if run is None:
            run = self._run = _ByteRun(self._reader)
            pending = self._pending
            self._pending = None
        else:
            pending = self._seg_pending
        skip = self._skip
        if skip is not None and pending is not None and pending < target_tid:
            offset = skip.seek_offset(
                target_tid, run.logical_position() - TID_BYTES
            )
            if offset is not None:
                run.jump_to(offset)
                if run.exhausted():
                    pending = None
                else:
                    run.ensure(TID_BYTES)
                    at = run.pos
                    pending = int.from_bytes(
                        run.buf[at : at + TID_BYTES], "little"
                    )
                    run.pos = at + TID_BYTES
        return run, pending

    @property
    def pending_tid(self) -> Optional[int]:
        """The tid the pointer is frozen at (None at the list tail)."""
        return self._pending

    def checkpoint_offset(self) -> int:
        """Start of the pending element (its tid bytes are re-read on resume)."""
        if self._pending is None:
            return self._reader.position
        return self._reader.position - TID_BYTES


class TextTypeIScanner(_TidBasedScanner):
    """Type I text layout: ``<tid, vector>`` per string, sorted by tid;
    consecutive elements may repeat a tid for multi-string values."""

    def __init__(
        self,
        reader: BufferedReader,
        scheme: SignatureScheme,
        skip: Optional[SkipTable] = None,
    ) -> None:
        self._scheme = scheme
        super().__init__(reader, skip)

    def move_to(self, tid: int) -> Optional[List[Signature]]:
        """Advance the pointer to *tid*; see the class docstring."""
        out: List[Signature] = []
        while self._pending is not None and self._pending <= tid:
            signature = self._scheme.read(self._reader)
            if self._pending == tid:
                out.append(signature)
            self._load_next()
        return out or None

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: same pointer walk, bare ``(length, bits)`` pairs."""
        self._maybe_skip(tids[0])
        read_raw = self._scheme.read_raw
        reader = self._reader
        column: List[object] = []
        for tid in tids:
            pairs = None
            while self._pending is not None and self._pending <= tid:
                pair = read_raw(reader)
                if self._pending == tid:
                    if pairs is None:
                        pairs = [pair]
                    else:
                        pairs.append(pair)
                self._load_next()
            column.append(pairs)
        return column

    def decode_segment(self, tids: List[int]):
        """Columnar decode: one flat signature run, bulk-parsed.

        Signatures are cracked out of :class:`_ByteRun` chunks with plain
        indexing — no per-field reader calls — so the dominant cost is
        the Python loop itself, not buffered-read bookkeeping.
        """
        if fastpath._np is None:
            return ColumnSegment(self.move_block(tids))
        run, pending = self._segment_run(tids[0])
        table = self._scheme.higher_table
        slots: List[int] = []
        lengths: List[int] = []
        bits: List[int] = []
        unique = 0
        for i, tid in enumerate(tids):
            first = True
            while pending is not None and pending <= tid:
                run.ensure(1)
                nbytes = table[run.buf[run.pos]]
                run.ensure(1 + nbytes)
                buf = run.buf
                at = run.pos
                if pending == tid:
                    if first:
                        unique += 1
                        first = False
                    slots.append(i)
                    lengths.append(buf[at])
                    bits.append(
                        int.from_bytes(buf[at + 1 : at + 1 + nbytes], "little")
                    )
                run.pos = at + 1 + nbytes
                if run.exhausted():
                    pending = None
                else:
                    run.ensure(TID_BYTES)
                    buf = run.buf
                    at = run.pos
                    pending = int.from_bytes(buf[at : at + TID_BYTES], "little")
                    run.pos = at + TID_BYTES
        self._seg_pending = pending
        return TextSegment(len(tids), slots, lengths, bits, unique)


class TextTypeIIScanner(_TidBasedScanner):
    """Type II text layout: ``<tid, num, vector1, vector2, …>``."""

    def __init__(
        self,
        reader: BufferedReader,
        scheme: SignatureScheme,
        skip: Optional[SkipTable] = None,
    ) -> None:
        self._scheme = scheme
        super().__init__(reader, skip)

    def move_to(self, tid: int) -> Optional[List[Signature]]:
        """Advance the pointer to *tid*; see the class docstring."""
        out: List[Signature] = []
        while self._pending is not None and self._pending <= tid:
            count = self._reader.read(NUM_BYTES)[0]
            signatures = [self._scheme.read(self._reader) for _ in range(count)]
            if self._pending == tid:
                out.extend(signatures)
            self._load_next()
        return out or None

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: same pointer walk, bare ``(length, bits)`` pairs."""
        self._maybe_skip(tids[0])
        read_raw = self._scheme.read_raw
        reader = self._reader
        column: List[object] = []
        for tid in tids:
            pairs = None
            while self._pending is not None and self._pending <= tid:
                count = reader.read(NUM_BYTES)[0]
                decoded = [read_raw(reader) for _ in range(count)]
                if self._pending == tid:
                    if pairs is None:
                        pairs = decoded
                    else:
                        pairs.extend(decoded)
                self._load_next()
            column.append(pairs or None)
        return column

    def decode_segment(self, tids: List[int]):
        """Columnar decode: one flat signature run, bulk-parsed."""
        if fastpath._np is None:
            return ColumnSegment(self.move_block(tids))
        run, pending = self._segment_run(tids[0])
        table = self._scheme.higher_table
        slots: List[int] = []
        lengths: List[int] = []
        bits: List[int] = []
        unique = 0
        for i, tid in enumerate(tids):
            first = True
            while pending is not None and pending <= tid:
                run.ensure(NUM_BYTES)
                count = run.buf[run.pos]
                run.pos += NUM_BYTES
                take = pending == tid
                # ``<tid, 0>`` elements are never written, but guard
                # anyway: an empty element must not count as defined.
                if take and first and count:
                    unique += 1
                    first = False
                for _ in range(count):
                    run.ensure(1)
                    nbytes = table[run.buf[run.pos]]
                    run.ensure(1 + nbytes)
                    buf = run.buf
                    at = run.pos
                    if take:
                        slots.append(i)
                        lengths.append(buf[at])
                        bits.append(
                            int.from_bytes(
                                buf[at + 1 : at + 1 + nbytes], "little"
                            )
                        )
                    run.pos = at + 1 + nbytes
                if run.exhausted():
                    pending = None
                else:
                    run.ensure(TID_BYTES)
                    buf = run.buf
                    at = run.pos
                    pending = int.from_bytes(buf[at : at + TID_BYTES], "little")
                    run.pos = at + TID_BYTES
        self._seg_pending = pending
        return TextSegment(len(tids), slots, lengths, bits, unique)


class TextTypeIIIScanner(VectorListScanner):
    """Type III text layout: positional ``<num, vectors…>`` for every tuple."""

    def __init__(self, reader: BufferedReader, scheme: SignatureScheme) -> None:
        super().__init__(reader)
        self._scheme = scheme
        self._run: Optional[_ByteRun] = None

    def move_to(self, tid: int) -> Optional[List[Signature]]:
        """Advance the pointer to *tid*; see the class docstring."""
        if self._reader.exhausted():
            raise IndexError_(
                "Type III vector list ran out of elements before the tuple "
                "list did — the index is inconsistent with its table"
            )
        count = self._reader.read(NUM_BYTES)[0]
        if count == 0:
            return None
        return [self._scheme.read(self._reader) for _ in range(count)]

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: one positional element per tid, bare pairs."""
        read_raw = self._scheme.read_raw
        reader = self._reader
        column: List[object] = []
        for _tid in tids:
            if reader.exhausted():
                raise IndexError_(
                    "Type III vector list ran out of elements before the "
                    "tuple list did — the index is inconsistent with its table"
                )
            count = reader.read(NUM_BYTES)[0]
            if count == 0:
                column.append(None)
            else:
                column.append([read_raw(reader) for _ in range(count)])
        return column

    def decode_segment(self, tids: List[int]):
        """Columnar decode: one flat signature run, bulk-parsed."""
        if fastpath._np is None:
            return ColumnSegment(self.move_block(tids))
        run = self._run
        if run is None:
            run = self._run = _ByteRun(self._reader)
        table = self._scheme.higher_table
        slots: List[int] = []
        lengths: List[int] = []
        bits: List[int] = []
        unique = 0
        for i in range(len(tids)):
            if run.exhausted():
                raise IndexError_(
                    "Type III vector list ran out of elements before the "
                    "tuple list did — the index is inconsistent with its table"
                )
            run.ensure(NUM_BYTES)
            count = run.buf[run.pos]
            run.pos += NUM_BYTES
            if count:
                unique += 1
                for _ in range(count):
                    run.ensure(1)
                    nbytes = table[run.buf[run.pos]]
                    run.ensure(1 + nbytes)
                    buf = run.buf
                    at = run.pos
                    slots.append(i)
                    lengths.append(buf[at])
                    bits.append(
                        int.from_bytes(buf[at + 1 : at + 1 + nbytes], "little")
                    )
                    run.pos = at + 1 + nbytes
        return TextSegment(len(tids), slots, lengths, bits, unique)


class NumericTypeIScanner(_TidBasedScanner):
    """Type I numeric layout: ``<tid, vector>`` per defined tuple."""

    def __init__(
        self,
        reader: BufferedReader,
        quantizer: NumericQuantizer,
        skip: Optional[SkipTable] = None,
    ) -> None:
        self._quantizer = quantizer
        self._seg_tids: List[int] = []
        self._seg_codes: List[int] = []
        super().__init__(reader, skip)

    def move_to(self, tid: int) -> Optional[int]:
        """Advance the pointer to *tid*; see the class docstring."""
        out: Optional[int] = None
        width = self._quantizer.vector_bytes
        while self._pending is not None and self._pending <= tid:
            code = self._quantizer.decode_bytes(self._reader.read(width))
            if self._pending == tid:
                out = code
            self._load_next()
        return out

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: same pointer walk, one code (or None) per tid."""
        self._maybe_skip(tids[0])
        width = self._quantizer.vector_bytes
        decode = self._quantizer.decode_bytes
        reader = self._reader
        column: List[object] = []
        for tid in tids:
            out = None
            while self._pending is not None and self._pending <= tid:
                code = decode(reader.read(width))
                if self._pending == tid:
                    out = code
                self._load_next()
            column.append(out)
        return column

    def decode_segment(self, tids: List[int]):
        """Columnar decode: bulk ``<tid, code>`` record reads + searchsorted.

        Fixed-width entries let the decoder slurp :data:`_SEG_READ_ENTRIES`
        records per read and crack them with one ``frombuffer`` instead of
        two ``reader.read`` calls per entry.  Records read past the block's
        last tid are parked in a carry (``_seg_tids``/``_seg_codes``) for
        the next block — which is why ``decode_segment`` must not be mixed
        with the scalar entry points on one scanner instance.
        """
        np = fastpath._np
        width = self._quantizer.vector_bytes
        dtype_code = fastpath.dtype_for_width(width)
        if np is None or dtype_code is None:
            return ColumnSegment(self.move_block(tids))
        if not self._seg_tids:
            self._maybe_skip(tids[0])
        reader = self._reader
        carry_tids = self._seg_tids
        carry_codes = self._seg_codes
        last = tids[-1]
        # Fold the scalar pending element (tid consumed, code not) into the
        # carry so the bulk path owns the full lookahead state.
        if self._pending is not None:
            carry_tids.append(self._pending)
            carry_codes.append(self._quantizer.decode_bytes(reader.read(width)))
            self._pending = None
        entry_bytes = TID_BYTES + width
        entry_dtype = getattr(self, "_entry_dtype", None)
        if entry_dtype is None:
            entry_dtype = np.dtype(
                [("tid", "<u4"), ("code", dtype_code)], align=False
            )
            self._entry_dtype = entry_dtype
        while (not carry_tids or carry_tids[-1] <= last) and not reader.exhausted():
            chunk = min(_SEG_READ_ENTRIES, reader.remaining() // entry_bytes)
            if chunk == 0:
                # Truncated final record: replicate the scalar walk's
                # failure mode (tid read, then a short code read raises).
                self._pending = int.from_bytes(reader.read(TID_BYTES), "little")
                carry_tids.append(self._pending)
                carry_codes.append(
                    self._quantizer.decode_bytes(reader.read(width))
                )
                self._pending = None
                continue
            records = np.frombuffer(reader.read(chunk * entry_bytes), entry_dtype)
            carry_tids.extend(records["tid"].tolist())
            carry_codes.extend(records["code"].tolist())
        consumed = bisect_right(carry_tids, last)
        count = len(tids)
        codes = np.zeros(count, dtype=np.int64)
        defined = np.zeros(count, dtype=bool)
        if consumed:
            entry_tids = np.asarray(carry_tids[:consumed], dtype=np.int64)
            entry_codes = np.asarray(carry_codes[:consumed], dtype=np.int64)
            del carry_tids[:consumed]
            del carry_codes[:consumed]
            block_tids = np.asarray(tids, dtype=np.int64)
            positions = np.searchsorted(block_tids, entry_tids)
            matched = block_tids[positions] == entry_tids
            codes[positions[matched]] = entry_codes[matched]
            defined[positions[matched]] = True
        return NumericSegment(codes, defined)


class NumericTypeIVScanner(VectorListScanner):
    """Type IV numeric layout: positional ``<vector>`` with a reserved ndf
    code, one element per tuple."""

    def __init__(self, reader: BufferedReader, quantizer: NumericQuantizer) -> None:
        super().__init__(reader)
        if quantizer.ndf_code is None:
            raise IndexError_("Type IV layout requires a reserved ndf code")
        self._quantizer = quantizer

    def move_to(self, tid: int) -> Optional[int]:
        """Advance the pointer to *tid*; see the class docstring."""
        if self._reader.exhausted():
            raise IndexError_(
                "Type IV vector list ran out of elements before the tuple "
                "list did — the index is inconsistent with its table"
            )
        code = self._quantizer.decode_bytes(
            self._reader.read(self._quantizer.vector_bytes)
        )
        if code == self._quantizer.ndf_code:
            return None
        return code

    def move_block(self, tids: List[int]) -> List[object]:
        """Block decode: one positional code per tid, ndf mapped to None."""
        quantizer = self._quantizer
        width = quantizer.vector_bytes
        decode = quantizer.decode_bytes
        ndf_code = quantizer.ndf_code
        reader = self._reader
        column: List[object] = []
        for _tid in tids:
            if reader.exhausted():
                raise IndexError_(
                    "Type IV vector list ran out of elements before the "
                    "tuple list did — the index is inconsistent with its table"
                )
            code = decode(reader.read(width))
            column.append(None if code == ndf_code else code)
        return column

    def decode_segment(self, tids: List[int]):
        """Columnar decode: the whole block in one read + one frombuffer."""
        np = fastpath._np
        quantizer = self._quantizer
        width = quantizer.vector_bytes
        dtype_code = fastpath.dtype_for_width(width)
        count = len(tids)
        reader = self._reader
        if (
            np is None
            or dtype_code is None
            or reader.remaining() < count * width
        ):
            # The short-list case falls back so a truncated final segment
            # fails element-by-element exactly like the scalar walk.
            return ColumnSegment(self.move_block(tids))
        raw = reader.read_view(count * width)
        codes = np.frombuffer(raw, dtype=dtype_code).astype(np.int64)
        defined = codes != quantizer.ndf_code
        return NumericSegment(codes, defined)
