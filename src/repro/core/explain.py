"""EXPLAIN for iVA-file queries: what a search will scan and why.

A static plan preview built from the attribute-list statistics — no data
is touched.  It reports, per queried attribute, the vector-list layout the
Sec. III-D formulas picked, the list's size, and the attribute's density;
plus the total bytes the filter phase will stream and a modeled lower
bound on the scan time under the table's disk parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Union

from repro.core.iva_file import IVAFile
from repro.core.tuple_list import ELEMENT as TUPLE_ELEMENT
from repro.errors import QueryError
from repro.query import Query
from repro.storage.table import SparseWideTable


@dataclass(frozen=True)
class AttributePlan:
    """The scan plan for one queried attribute."""

    name: str
    kind: str
    layout: str
    list_bytes: int
    defined_tuples: int
    density: float
    alpha: float

    def describe(self) -> str:
        """Human-readable rendering."""
        return (
            f"{self.name} ({self.kind}): {self.layout}, "
            f"{self.list_bytes:,} B, df={self.defined_tuples} "
            f"({self.density:.1%} of tuples), α={self.alpha:.0%}"
        )


@dataclass(frozen=True)
class QueryPlan:
    """The full filter-phase plan of one query."""

    attributes: List[AttributePlan]
    tuple_list_bytes: int
    total_scan_bytes: int
    modeled_scan_ms: float

    def describe(self) -> str:
        """Human-readable rendering."""
        lines = ["iVA-file parallel filter-and-refine plan:"]
        lines.append(
            f"  tuple list: {self.tuple_list_bytes:,} B (sequential scan)"
        )
        for plan in self.attributes:
            lines.append("  vector list " + plan.describe())
        lines.append(
            f"  filter phase streams {self.total_scan_bytes:,} B "
            f"(~{self.modeled_scan_ms:.1f} ms at the configured transfer rate); "
            "refine accesses depend on the data"
        )
        return "\n".join(lines)


def explain(
    table: SparseWideTable,
    index: IVAFile,
    query: Union[Query, Mapping[str, object]],
) -> QueryPlan:
    """Build the static plan for *query* against *index*."""
    if isinstance(query, Mapping):
        query = Query.from_dict(table.catalog, query)
    elif not isinstance(query, Query):
        raise QueryError(f"cannot interpret {query!r} as a query")

    live = max(index.tuple_elements, 1)
    plans: List[AttributePlan] = []
    total = TUPLE_ELEMENT.size * index.tuple_elements
    for term in query.terms:
        entry = index.entry(term.attr.attr_id)
        if entry is None:
            plans.append(
                AttributePlan(
                    name=term.attr.name,
                    kind=term.attr.kind.value,
                    layout="(not indexed — treated as ndf)",
                    list_bytes=0,
                    defined_tuples=0,
                    density=0.0,
                    alpha=index.config.alpha_for(term.attr.name),
                )
            )
            continue
        plans.append(
            AttributePlan(
                name=term.attr.name,
                kind=term.attr.kind.value,
                layout=entry.list_type.name,
                list_bytes=entry.list_size,
                defined_tuples=entry.df,
                density=entry.df / live,
                alpha=entry.alpha,
            )
        )
        total += entry.list_size
    params = table.disk.params
    bytes_per_ms = params.transfer_mb_per_s * 1024 * 1024 / 1000.0
    return QueryPlan(
        attributes=plans,
        tuple_list_bytes=TUPLE_ELEMENT.size * index.tuple_elements,
        total_scan_bytes=total,
        modeled_scan_ms=total / bytes_per_ms,
    )
