"""The four vector-list layouts and their size-based selection (Sec. III-D).

For a text attribute the builder chooses among Types I, II and III; for a
numeric attribute between Types I and IV — always the smallest, using the
paper's closed-form sizes:

```
text:     L_I   = l_tid · str           + L
          L_II  = (l_tid + l_num) · df  + L
          L_III = l_num · |T|           + L
numeric:  L_I   = (l_tid + ceil(α·r)) · df
          L_IV  = ceil(α·r) · |T|
```

where ``L`` is the total space of all approximation vectors on the
attribute, ``df`` the number of defining tuples, ``str`` the total string
count, and ``|T|`` the table's (live) tuple count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.numeric import NumericQuantizer
from repro.core.scan import NUM_BYTES, TID_BYTES
from repro.core.signature import SignatureScheme
from repro.errors import EncodingError
from repro.model.values import TextValue


class ListType(enum.Enum):
    """The vector-list layouts of Sec. III-D."""

    TYPE_I = 1
    TYPE_II = 2
    TYPE_III = 3
    TYPE_IV = 4


@dataclass(frozen=True)
class TextListSizes:
    """Predicted serialized sizes of the three text layouts."""

    type_i: int
    type_ii: int
    type_iii: int

    def best(self) -> ListType:
        """The smallest layout (ties prefer the lower type number)."""
        candidates = [
            (self.type_i, 1, ListType.TYPE_I),
            (self.type_ii, 2, ListType.TYPE_II),
            (self.type_iii, 3, ListType.TYPE_III),
        ]
        return min(candidates)[2]


@dataclass(frozen=True)
class NumericListSizes:
    """Predicted serialized sizes of the two numeric layouts."""

    type_i: int
    type_iv: int

    def best(self) -> ListType:
        """The smallest layout (ties prefer the lower type number)."""
        return ListType.TYPE_I if self.type_i <= self.type_iv else ListType.TYPE_IV


def text_list_sizes(
    vector_total_bytes: int, df: int, str_count: int, table_tuples: int
) -> TextListSizes:
    """Closed-form text sizes from the attribute-list statistics."""
    return TextListSizes(
        type_i=TID_BYTES * str_count + vector_total_bytes,
        type_ii=(TID_BYTES + NUM_BYTES) * df + vector_total_bytes,
        type_iii=NUM_BYTES * table_tuples + vector_total_bytes,
    )


def numeric_list_sizes(
    vector_bytes: int, df: int, table_tuples: int
) -> NumericListSizes:
    """Closed-form numeric sizes from the attribute-list statistics."""
    return NumericListSizes(
        type_i=(TID_BYTES + vector_bytes) * df,
        type_iv=vector_bytes * table_tuples,
    )


# --------------------------------------------------------------------- text


def choose_text_type(
    scheme: SignatureScheme,
    entries: Sequence[Tuple[int, TextValue]],
    table_tuples: int,
) -> Tuple[ListType, TextListSizes]:
    """Pick the smallest text layout for the given defined entries."""
    df = len(entries)
    str_count = sum(len(strings) for _, strings in entries)
    vector_total = sum(
        scheme.vector_byte_size(s) for _, strings in entries for s in strings
    )
    sizes = text_list_sizes(vector_total, df, str_count, table_tuples)
    return sizes.best(), sizes


def build_text_list(
    list_type: ListType,
    scheme: SignatureScheme,
    entries: Sequence[Tuple[int, TextValue]],
    all_tids: Sequence[int],
) -> bytes:
    """Serialise a text vector list.

    *entries* are the defined ``(tid, strings)`` pairs in increasing tid
    order; *all_tids* is the full tuple-list tid sequence (needed by the
    positional Type III layout).
    """
    _check_sorted(tid for tid, _ in entries)
    out = bytearray()
    if list_type is ListType.TYPE_I:
        for tid, strings in entries:
            for s in strings:
                out += encode_text_element_type_i(scheme, tid, s)
    elif list_type is ListType.TYPE_II:
        for tid, strings in entries:
            out += encode_text_element_type_ii(scheme, tid, strings)
    elif list_type is ListType.TYPE_III:
        by_tid: Dict[int, TextValue] = dict(entries)
        if len(by_tid) != len(entries):
            raise EncodingError("duplicate tids in text vector-list entries")
        for tid in all_tids:
            out += encode_text_element_type_iii(scheme, by_tid.get(tid))
    else:
        raise EncodingError(f"{list_type} is not a text layout")
    return bytes(out)


def encode_text_element_type_i(scheme: SignatureScheme, tid: int, s: str) -> bytes:
    """One Type I element: tid + signature."""
    return tid.to_bytes(TID_BYTES, "little") + scheme.encode(s).to_bytes()


def encode_text_element_type_ii(
    scheme: SignatureScheme, tid: int, strings: TextValue
) -> bytes:
    """One Type II element: tid, count, signatures."""
    if len(strings) > 255:
        raise EncodingError("Type II elements hold at most 255 strings")
    out = bytearray(tid.to_bytes(TID_BYTES, "little"))
    out.append(len(strings))
    for s in strings:
        out += scheme.encode(s).to_bytes()
    return bytes(out)


def encode_text_element_type_iii(
    scheme: SignatureScheme, strings: Optional[TextValue]
) -> bytes:
    """One Type III element: count, signatures (0 for ndf)."""
    if strings is None:
        return b"\x00"
    if len(strings) > 255:
        raise EncodingError("Type III elements hold at most 255 strings")
    out = bytearray([len(strings)])
    for s in strings:
        out += scheme.encode(s).to_bytes()
    return bytes(out)


# ------------------------------------------------------------------ numeric


def choose_numeric_type(
    vector_bytes: int, df: int, table_tuples: int
) -> Tuple[ListType, NumericListSizes]:
    """Pick the smaller numeric layout via the size formulas."""
    sizes = numeric_list_sizes(vector_bytes, df, table_tuples)
    return sizes.best(), sizes


def build_numeric_list(
    list_type: ListType,
    quantizer: NumericQuantizer,
    entries: Sequence[Tuple[int, float]],
    all_tids: Sequence[int],
) -> bytes:
    """Serialise a numeric vector list (defined ``(tid, value)`` entries).

    Bulk quantisation goes through :mod:`repro.core.fastpath` (vectorised
    when numpy is available, byte-identical either way).
    """
    from repro.core.fastpath import encode_numeric_batch, pack_codes

    _check_sorted(tid for tid, _ in entries)
    codes = encode_numeric_batch(quantizer, [value for _, value in entries])
    width = quantizer.vector_bytes
    if list_type is ListType.TYPE_I:
        out = bytearray()
        for (tid, _), code in zip(entries, codes):
            out += tid.to_bytes(TID_BYTES, "little")
            out += code.to_bytes(width, "little")
        return bytes(out)
    if list_type is ListType.TYPE_IV:
        code_by_tid = dict(zip((tid for tid, _ in entries), codes))
        if len(code_by_tid) != len(entries):
            raise EncodingError("duplicate tids in numeric vector-list entries")
        ndf_code = quantizer.ndf_code
        if ndf_code is None:
            raise EncodingError("Type IV layout requires a reserved ndf code")
        all_codes = [code_by_tid.get(tid, ndf_code) for tid in all_tids]
        return pack_codes(all_codes, width)
    raise EncodingError(f"{list_type} is not a numeric layout")


def encode_numeric_element_type_i(
    quantizer: NumericQuantizer, tid: int, value: float
) -> bytes:
    """One numeric Type I element: tid + code."""
    return tid.to_bytes(TID_BYTES, "little") + quantizer.encode_bytes(value)


# ------------------------------------------------------------------ helpers


def _check_sorted(tids: Iterable[int]) -> None:
    previous = -1
    for tid in tids:
        if tid < previous:
            raise EncodingError("vector-list entries must be sorted by tid")
        previous = tid


def text_vector_total_bytes(
    scheme: SignatureScheme, entries: Sequence[Tuple[int, TextValue]]
) -> int:
    """``L``: total bytes of all signatures on the attribute."""
    return sum(scheme.vector_byte_size(s) for _, strings in entries for s in strings)


def list_types_for_kind(is_text: bool) -> List[ListType]:
    """The candidate layouts for a text or numeric attribute."""
    if is_text:
        return [ListType.TYPE_I, ListType.TYPE_II, ListType.TYPE_III]
    return [ListType.TYPE_I, ListType.TYPE_IV]
