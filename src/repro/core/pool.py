"""The temporary result pool of Algorithm 1 (paper Sec. IV-A).

Holds at most k ``<tid, dist>`` pairs.  ``max_dist`` is the largest actual
distance in the pool; a tuple is a candidate iff the pool is not yet full or
its *estimated* distance beats ``max_dist``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class PoolEntry:
    """One pool member: tid plus its actual distance."""
    tid: int
    distance: float


class ResultPool:
    """Bounded max-heap of the best k tuples seen so far."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        # Max-heap via negated distances; tid breaks ties deterministically.
        self._heap: List[Tuple[float, int]] = []

    def size(self) -> int:
        """Current number of members."""
        return len(self._heap)

    def is_full(self) -> bool:
        """True once k members are held."""
        return len(self._heap) >= self.k

    def max_dist(self) -> Optional[float]:
        """Largest actual distance in the pool, or None when empty."""
        if not self._heap:
            return None
        return -self._heap[0][0]

    def is_candidate(self, estimated_distance: float) -> bool:
        """Line 10 of Algorithm 1: worth fetching from the table file?"""
        if not self.is_full():
            return True
        return estimated_distance < -self._heap[0][0]

    def insert(self, tid: int, distance: float) -> bool:
        """Insert a tuple with its *actual* distance.

        Returns True if the tuple entered the pool (and possibly evicted the
        current worst member).
        """
        if not self.is_full():
            heapq.heappush(self._heap, (-distance, tid))
            return True
        worst = -self._heap[0][0]
        if distance < worst:
            heapq.heapreplace(self._heap, (-distance, tid))
            return True
        return False

    def results(self) -> List[PoolEntry]:
        """Pool contents sorted by (distance, tid) ascending."""
        ordered = sorted(((-neg, tid) for neg, tid in self._heap))
        return [PoolEntry(tid=tid, distance=dist) for dist, tid in ordered]
