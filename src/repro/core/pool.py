"""The temporary result pool of Algorithm 1 (paper Sec. IV-A).

Holds at most k ``<tid, dist>`` pairs.  ``max_dist`` is the largest actual
distance in the pool; a tuple is a candidate iff the pool is not yet full or
its *estimated* distance beats ``max_dist``.

Determinism contract (load-bearing for ``repro.parallel``): the pool's
final contents are the k smallest entries under the total order
``(distance, tid)`` — a pure function of the *multiset* of inserted pairs,
independent of insertion order.  The sequential engine inserts in tid
order, shard workers and the merge step insert in whatever order the
scheduler produces; both converge on identical results because ties at the
boundary are broken by tid, never by arrival time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class PoolEntry:
    """One pool member: tid plus its actual distance."""
    tid: int
    distance: float


class ResultPool:
    """Bounded top-k pool ordered by ``(distance, tid)``."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        # Max-heap via negated keys: the root is the worst member under the
        # (distance, tid) order — largest distance, largest tid among ties.
        self._heap: List[Tuple[float, int]] = []

    def size(self) -> int:
        """Current number of members."""
        return len(self._heap)

    def is_full(self) -> bool:
        """True once k members are held."""
        return len(self._heap) >= self.k

    def max_dist(self) -> Optional[float]:
        """Largest actual distance in the pool, or None when empty."""
        if not self._heap:
            return None
        return -self._heap[0][0]

    def worst(self) -> Optional[Tuple[float, int]]:
        """The worst member as ``(distance, tid)``, or None when empty."""
        if not self._heap:
            return None
        neg_dist, neg_tid = self._heap[0]
        return (-neg_dist, -neg_tid)

    def is_candidate(self, estimated_distance: float, tid: Optional[int] = None) -> bool:
        """Line 10 of Algorithm 1: worth fetching from the table file?

        With *tid* given, the check is tie-aware: an estimate equal to the
        current ``max_dist`` still qualifies when the tid beats the worst
        member's tid — required for order-independent results under
        concurrent execution (a shard may fill the pool with a larger tid
        first).  Without *tid* the classic strict comparison applies.
        """
        if not self.is_full():
            return True
        worst_dist = -self._heap[0][0]
        if estimated_distance < worst_dist:
            return True
        if tid is not None and estimated_distance == worst_dist:
            return tid < -self._heap[0][1]
        return False

    def insert(self, tid: int, distance: float) -> bool:
        """Insert a tuple with its *actual* distance.

        Returns True if the tuple entered the pool (and possibly evicted the
        current worst member under the ``(distance, tid)`` order).
        """
        if not self.is_full():
            heapq.heappush(self._heap, (-distance, -tid))
            return True
        worst_dist, worst_tid = -self._heap[0][0], -self._heap[0][1]
        if (distance, tid) < (worst_dist, worst_tid):
            heapq.heapreplace(self._heap, (-distance, -tid))
            return True
        return False

    def merge_from(self, other: "ResultPool") -> int:
        """Insert every member of *other*; returns how many were admitted."""
        admitted = 0
        for entry in other.results():
            if self.insert(entry.tid, entry.distance):
                admitted += 1
        return admitted

    def results(self) -> List[PoolEntry]:
        """Pool contents sorted by (distance, tid) ascending."""
        ordered = sorted((-neg_d, -neg_t) for neg_d, neg_t in self._heap)
        return [PoolEntry(tid=tid, distance=dist) for dist, tid in ordered]
