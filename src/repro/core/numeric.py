"""Relative-domain approximation vectors for numeric values (Sec. III-C).

The VA-file quantises over the attribute's *absolute* type domain; the paper
observes that actual values "usually lie within a much smaller range and
fall in very few slices" and proposes cutting the *relative domain* — the
observed min..max — instead, so shorter codes reach the same precision.

Out-of-domain inserts (values arriving after the domain was fixed) are
encoded with the id of the nearest slice.  To keep lower bounds valid in
that case the two boundary slices are treated as open-ended
(``(−∞, hi]`` and ``[lo, +∞)``) when bounding — so a clamped value can never
produce a false negative, exactly as the paper requires.

Vector width follows Sec. III-D: ``ceil(α · r)`` bytes where ``r`` is the
byte width of a stored numeric value (8 for our float64 cells).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import EncodingError

#: Byte width of a stored numeric value (float64 in the interpreted format).
NUMERIC_VALUE_BYTES = 8

#: Largest code space the filter kernel materialises eagerly as a full
#: ``code → lower_bound`` array (one-byte vectors); wider quantizers are
#: memoised lazily per observed code instead.
EAGER_LUT_MAX_CODES = 256


def vector_bytes_for_alpha(alpha: float, value_bytes: int = NUMERIC_VALUE_BYTES) -> int:
    """``ceil(α · r)`` — the approximation vector width in bytes."""
    if not 0 < alpha <= 1:
        raise EncodingError(f"relative vector length α must be in (0, 1], got {alpha}")
    return max(1, math.ceil(alpha * value_bytes))


@dataclass(frozen=True)
class NumericQuantizer:
    """Uniform scalar quantiser over a relative domain ``[lo, hi]``.

    ``reserve_ndf`` steals the top code as the ndf marker required by the
    Type IV (positional) vector-list layout.
    """

    lo: float
    hi: float
    vector_bytes: int
    reserve_ndf: bool = False

    def __post_init__(self) -> None:
        if self.vector_bytes < 1 or self.vector_bytes > 8:
            raise EncodingError(f"vector width must be 1..8 bytes, got {self.vector_bytes}")
        if self.hi < self.lo:
            raise EncodingError(f"empty domain: lo={self.lo} hi={self.hi}")

    @property
    def code_space(self) -> int:
        """Number of representable codes (2^bits)."""
        return 1 << (8 * self.vector_bytes)

    @property
    def num_slices(self) -> int:
        """Data slices (code space minus a reserved ndf code)."""
        return self.code_space - (1 if self.reserve_ndf else 0)

    @property
    def ndf_code(self) -> Optional[int]:
        """The reserved ndf code (Type IV layouts), or None."""
        return self.code_space - 1 if self.reserve_ndf else None

    @property
    def slice_width(self) -> float:
        """Width of one slice in value units."""
        if self.hi == self.lo:
            return 0.0
        return (self.hi - self.lo) / self.num_slices

    def encode(self, value: float) -> int:
        """Slice id of *value*; out-of-domain values clamp to the nearest slice."""
        if value <= self.lo:
            return 0
        if value >= self.hi:
            return self.num_slices - 1
        width = self.slice_width
        code = int((value - self.lo) / width)
        if code >= self.num_slices:
            code = self.num_slices - 1
        return code

    def slice_bounds(self, code: int) -> Tuple[float, float]:
        """The closed interval a code nominally covers (before open-ending)."""
        if not 0 <= code < self.num_slices:
            raise EncodingError(f"code {code} out of range 0..{self.num_slices - 1}")
        if self.hi == self.lo:
            return self.lo, self.hi
        width = self.slice_width
        return self.lo + code * width, self.lo + (code + 1) * width

    def lower_bound(self, query_value: float, code: int) -> float:
        """A guaranteed lower bound on ``|query_value − v|`` for any value
        ``v`` that encodes to *code* — including clamped out-of-domain values.
        """
        lo, hi = self.slice_bounds(code)
        open_low = code == 0
        open_high = code == self.num_slices - 1
        if (open_low or query_value >= lo) and (open_high or query_value <= hi):
            return 0.0
        if not open_low and query_value < lo:
            return lo - query_value
        return query_value - hi

    def lower_bound_table(self, query_value: float) -> Tuple[float, ...]:
        """``code → lower_bound(query_value, code)`` for every data slice.

        The query-compiled numeric LUT of the block filter kernel: one
        entry per slice id, each computed by :meth:`lower_bound` itself, so
        a table lookup is bit-identical to the scalar arithmetic —
        open-ended boundary slices and clamped out-of-domain codes
        included.  Only sensible for small code spaces; the kernel
        memoises lazily above :data:`EAGER_LUT_MAX_CODES`.
        """
        return tuple(
            self.lower_bound(query_value, code) for code in range(self.num_slices)
        )

    def encode_bytes(self, value: float) -> bytes:
        """The value's code as little-endian bytes."""
        return self.encode(value).to_bytes(self.vector_bytes, "little")

    def ndf_bytes(self) -> bytes:
        """The reserved ndf code as bytes (Type IV layouts)."""
        code = self.ndf_code
        if code is None:
            raise EncodingError("this quantizer reserves no ndf code")
        return code.to_bytes(self.vector_bytes, "little")

    def decode_bytes(self, raw: bytes) -> int:
        """Code from its little-endian byte form."""
        if len(raw) != self.vector_bytes:
            raise EncodingError(
                f"expected {self.vector_bytes} code bytes, got {len(raw)}"
            )
        return int.from_bytes(raw, "little")

    @classmethod
    def from_domain(
        cls,
        lo: Optional[float],
        hi: Optional[float],
        alpha: float,
        reserve_ndf: bool = False,
    ) -> "NumericQuantizer":
        """Build from an observed relative domain (possibly empty so far)."""
        if lo is None or hi is None:
            lo, hi = 0.0, 0.0
        return cls(
            lo=float(lo),
            hi=float(hi),
            vector_bytes=vector_bytes_for_alpha(alpha),
            reserve_ndf=reserve_ndf,
        )
