"""The *sequential* filter-and-refine plan — the VA-file's strategy.

Sec. IV-A: "The existing process proposed in the VA-file is to scan the
whole VA-file to get a set of candidate tuples, and check them all in the
data file afterwards (sequential plan).  This plan requires the
approximation vector to be able to provide not only a lower bound … but
also a meaningful upper bound.  Otherwise, the filtering step fails as all
tuples are in the candidate set.  However, a limited length vector cannot
indicate any upper bound for unlimited-and-variable length strings …
So we propose the parallel plan."

We implement the sequential plan for completeness and as an executable
ablation of that argument:

* numeric codes *do* carry an upper bound (the far edge of the slice, with
  the boundary slices open-ended and therefore unbounded), so the plan
  works on numeric-only queries;
* for text terms there is no finite upper bound — the plan degrades to
  refining every tuple whose lower bound survives phase 1 against the
  *k-th smallest upper bound*, which for text is infinite: the candidate
  set is the whole table, exactly as the paper predicts.

The engine stays exact in all cases; only its efficiency collapses where
the paper says it must.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Tuple

from repro.core.engine import (
    FilterAndRefineEngine,
    QueryResult,
    SearchReport,
    observe_search,
    trace_phases,
)
from repro.core.iva_file import DELETED_PTR, IVAFile
from repro.core.pool import ResultPool
from repro.core.signature import QueryStringEncoder
from repro.metrics.distance import DistanceFunction
from repro.query import Query


class SequentialPlanEngine(FilterAndRefineEngine):
    """Two-phase (scan-then-refine) query processing over the iVA-file."""

    name = "iVA-seq"

    def __init__(
        self,
        table,
        index: IVAFile,
        distance: Optional[DistanceFunction] = None,
    ) -> None:
        super().__init__(table, distance)
        self.index = index

    # The base-class template is interleaved; the sequential plan overrides
    # search() wholesale with the two-phase strategy.
    def _filter(self, query, distance):  # pragma: no cover - not used
        raise NotImplementedError("the sequential plan overrides search()")

    def _bounds(
        self, query: Query, distance: DistanceFunction
    ) -> List[Tuple[int, float, float]]:
        """Phase 1: one full scan yielding (tid, lower, upper) per tuple."""
        scan = self.index.open_scan(query.attribute_ids())
        n = self.index.config.n
        encoders = []
        quantizers = []
        for term in query.terms:
            if term.attr.is_text:
                encoders.append(QueryStringEncoder(str(term.value), n))
                quantizers.append(None)
            else:
                encoders.append(None)
                entry = self.index.entry(term.attr.attr_id)
                quantizers.append(entry.quantizer if entry is not None else None)
        ndf_penalty = distance.ndf_penalty
        out = []
        for tid, ptr in scan:
            payloads = scan.payloads(tid)
            if ptr == DELETED_PTR:
                continue
            lowers: List[float] = []
            uppers: List[float] = []
            for idx, term in enumerate(query.terms):
                payload = payloads[idx]
                if payload is None:
                    lowers.append(ndf_penalty)
                    uppers.append(ndf_penalty)
                elif term.attr.is_text:
                    lowers.append(
                        min(encoders[idx].lower_bound(sig) for sig in payload)
                    )
                    # No finite upper bound exists for a string signature.
                    uppers.append(math.inf)
                else:
                    quantizer = quantizers[idx]
                    code = payload
                    lowers.append(quantizer.lower_bound(float(term.value), code))
                    uppers.append(
                        _numeric_upper_bound(quantizer, float(term.value), code)
                    )
            lower = distance.combine_bounds(query, lowers)
            upper = (
                math.inf
                if any(math.isinf(u) for u in uppers)
                else distance.combine_bounds(query, uppers)
            )
            out.append((tid, lower, upper))
        return out

    def search(self, query, k: int = 10, distance=None) -> SearchReport:
        """Run a top-k structured similarity query; returns a report."""
        query = self.prepare_query(query)
        dist = distance or self.distance
        report = SearchReport()
        disk = self.table.disk
        tracer = self._tracer()

        with tracer.span(
            "query", engine=self.name, k=k, attr_ids=list(query.attribute_ids())
        ) as span:
            io_before = disk.stats.io_time_ms
            wall_before = time.perf_counter()
            bounds = self._bounds(query, dist)
            report.tuples_scanned = len(bounds)
            report.filter_io_ms = disk.stats.io_time_ms - io_before
            report.filter_wall_s = time.perf_counter() - wall_before

            # The pruning threshold: the k-th smallest upper bound.  With any
            # text term every upper bound is infinite and nothing is pruned.
            uppers = sorted(upper for _, _, upper in bounds)
            threshold = uppers[k - 1] if len(uppers) >= k else math.inf
            candidates = [tid for tid, lower, _ in bounds if lower <= threshold]

            io_before = disk.stats.io_time_ms
            wall_before = time.perf_counter()
            pool = ResultPool(k)
            for tid in candidates:
                record = self.table.read(tid)
                pool.insert(tid, dist.actual(query, record))
                report.table_accesses += 1
            report.refine_io_ms = disk.stats.io_time_ms - io_before
            report.refine_wall_s = time.perf_counter() - wall_before
            report.results = [
                QueryResult(tid=entry.tid, distance=entry.distance)
                for entry in pool.results()
            ]
            trace_phases(tracer, span, report)
        observe_search(self._registry(), self.name, report)
        return report


def _numeric_upper_bound(quantizer, query_value: float, code: int) -> float:
    """Largest possible |query − v| for any v encoding to *code*.

    Boundary slices are open-ended (out-of-domain values clamp into them),
    so their upper bound is infinite.
    """
    lo, hi = quantizer.slice_bounds(code)
    open_low = code == 0
    open_high = code == quantizer.num_slices - 1
    if open_low or open_high:
        return math.inf
    return max(abs(query_value - lo), abs(query_value - hi))
