"""The iVA-file index: tuple list, attribute list, per-attribute vector lists.

Physical layout on the simulated disk (one index instance = one file family):

* ``<name>.tuples`` — the tuple list: ``<tid u32, ptr u64>`` elements sorted
  by tid; ``ptr`` is the tuple's offset in the table file, rewritten to a
  sentinel on deletion (Sec. IV-B);
* ``<name>.attrs``  — the attribute list, one fixed-width element per
  attribute id (positional mapping, no explicit ids);
* ``<name>.v<attr_id>`` — that attribute's vector list, in the layout chosen
  by the Sec. III-D size formulas; appends go to the tail, located via the
  attribute-list element.

Maintenance follows Sec. IV-B: inserts append everywhere, deletes tombstone
the tuple list only, updates are delete + insert under a fresh tid, and
:meth:`IVAFile.rebuild` compacts everything.

Sync directory
--------------

Vector-list elements are variable width, so resuming a scan mid-list — what
``repro.parallel`` shard workers do — needs a resume point per list.  The
index maintains a **checkpoint directory** as it goes: every
:data:`SYNC_INTERVAL` tuple-list elements it records, for every attribute,
the :class:`~repro.core.scan.ResumePoint` at which a fresh scanner resumes
the synchronized scan at that element — a byte offset plus, for delta-coded
codecs, the decoding base at that offset.  At rebuild the points are pure
arithmetic over the entries being serialized (delegated to the active
codec); at insert they are the current list tails — either way the
directory costs no I/O.  Attached indexes have no directory (it lives
in memory); the shard planner falls back to a one-off charged walk.

Codecs
------

*Which bytes* each layout serializes to is pluggable (``repro.codec``):
``IVAConfig.codec`` names the wire-format family used at build/insert, and
every attribute-list element records its list's codec id, so attach needs
no out-of-band knowledge.  All codecs preserve the no-false-negative
contract; they only change element addressing (see
:mod:`repro.codec.compressed`).
"""

from __future__ import annotations

import logging
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.codec import VectorListCodec, codec_for_code, get_codec
from repro.codec.base import list_last_key as _list_last_key
from repro.core.numeric import NumericQuantizer, vector_bytes_for_alpha
from repro.core.scan import ResumePoint, SkipTable, VectorListScanner
from repro.core.signature import SignatureScheme
from repro.core.tuple_list import DELETED_PTR, TupleList
from repro.core.vector_lists import ListType
from repro.errors import IndexError_
from repro.model.schema import AttributeDef
from repro.model.values import CellValue, is_numeric_value, is_text_value
from repro.storage.pager import BufferedReader
from repro.storage.table import SparseWideTable

#: Attribute-list element: list_type, kind, codec, alpha, n, df, str, lo,
#: hi, vector_bytes, list_size, last_key.
_ATTR_ELEMENT = struct.Struct("<BBBdBIIddBQq")

#: Byte width of one attribute-list element (public for the size model).
ATTR_ELEMENT_BYTES = _ATTR_ELEMENT.size

_KIND_TEXT = 1
_KIND_NUMERIC = 0

#: Tuple-list elements between consecutive checkpoint-directory sync points.
SYNC_INTERVAL = 64

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class IVAConfig:
    """Tunable parameters of the index (paper Table I defaults).

    The attribute list stores α *per attribute* (Sec. III-D), so the
    relative vector length may be overridden for individual attributes —
    spend more bits where filtering matters, fewer on rarely queried
    attributes — via ``alpha_overrides`` keyed by attribute name.

    ``codec`` names the vector-list wire-format family (``repro.codec``)
    used when building and appending; existing lists keep the codec they
    were written with (it is recorded per attribute-list element).
    """

    alpha: float = 0.20
    n: int = 2
    name: str = "iva"
    alpha_overrides: Mapping[str, float] = field(default_factory=dict)
    codec: str = "raw"

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise IndexError_(f"α must be in (0, 1], got {self.alpha}")
        if self.n < 1:
            raise IndexError_(f"n must be >= 1, got {self.n}")
        for name, alpha in self.alpha_overrides.items():
            if not 0 < alpha <= 1:
                raise IndexError_(
                    f"α override for {name!r} must be in (0, 1], got {alpha}"
                )
        get_codec(self.codec)  # validate the name early

    def alpha_for(self, attr_name: str) -> float:
        """The relative vector length to use for one attribute."""
        return self.alpha_overrides.get(attr_name, self.alpha)


@dataclass
class AttributeEntry:
    """In-memory mirror of one attribute-list element."""

    attr: AttributeDef
    list_type: ListType
    alpha: float
    n: int
    df: int = 0
    str_count: int = 0
    lo: Optional[float] = None
    hi: Optional[float] = None
    vector_bytes: int = 0
    list_size: int = 0
    #: Wire-format family this attribute's list is encoded with.
    codec: str = "raw"
    #: Decoding base at the list tail: the last appended element's tid
    #: (tid-based layouts) or last defined tuple position (positional
    #: layouts); ``-1`` for an empty list.  Delta-coded codecs append
    #: relative to it, so it persists in the attribute-list element.
    last_key: int = -1
    _scheme: Optional[SignatureScheme] = field(default=None, repr=False)
    _quantizer: Optional[NumericQuantizer] = field(default=None, repr=False)

    @property
    def is_positional(self) -> bool:
        """True for Type III/IV (position-identified) layouts."""
        return self.list_type in (ListType.TYPE_III, ListType.TYPE_IV)

    @property
    def codec_impl(self) -> VectorListCodec:
        """The registered codec object for :attr:`codec`."""
        return get_codec(self.codec)

    @property
    def scheme(self) -> SignatureScheme:
        """The signature scheme for this attribute's α and n."""
        if self._scheme is None:
            self._scheme = SignatureScheme(self.alpha, self.n)
        return self._scheme

    @property
    def quantizer(self) -> NumericQuantizer:
        """The numeric quantizer derived from the stored domain."""
        if self._quantizer is None:
            self._quantizer = NumericQuantizer.from_domain(
                self.lo,
                self.hi,
                self.alpha,
                reserve_ndf=self.list_type is ListType.TYPE_IV,
            )
        return self._quantizer

    def pack(self) -> bytes:
        """Serialize the element for the attribute-list file."""
        return _ATTR_ELEMENT.pack(
            self.list_type.value,
            _KIND_TEXT if self.attr.is_text else _KIND_NUMERIC,
            self.codec_impl.code,
            self.alpha,
            self.n,
            self.df,
            self.str_count,
            self.lo if self.lo is not None else 0.0,
            self.hi if self.hi is not None else 0.0,
            self.vector_bytes,
            self.list_size,
            self.last_key,
        )


class _NullScanner(VectorListScanner):
    """Scanner for an attribute the index holds no list for (always ndf)."""

    def __init__(self) -> None:  # no reader needed
        pass

    def move_to(self, tid: int) -> None:
        """Advance the pointer to *tid*; see the class docstring."""
        return None

    def move_block(self, tids) -> list:
        """Every element is ndf."""
        return [None] * len(tids)

    def checkpoint_offset(self) -> int:
        """No backing list: every resume point is offset 0."""
        return 0


class IVAFile:
    """The inverted vector-approximation file over one sparse wide table."""

    def __init__(self, table: SparseWideTable, config: Optional[IVAConfig] = None) -> None:
        self.table = table
        self.disk = table.disk
        self.config = config or IVAConfig()
        self._entries: List[AttributeEntry] = []
        self._tuples = TupleList(self.disk, self.tuples_file)
        self._version = 0
        # Checkpoint directory (see the module docstring): element positions
        # and, per attribute, the vector-list resume point at each position.
        # Maintained by rebuild/insert; absent (inactive) on attach.
        self._sync_positions: List[int] = []
        self._sync_offsets: Dict[int, List[ResumePoint]] = {}
        self._sync_active = False
        # Per-attribute skip tables (raw tid-based lists only): segment tid
        # fences built at rebuild so a frozen pointer can jump dead runs.
        # Appends keep a table valid — appended tids are strictly larger
        # than every fenced tid, so jumps never overshoot into new bytes —
        # but a rebuilt list gets a fresh table.  Absent on attach.
        self._skip_tables: Dict[int, SkipTable] = {}
        if not self.disk.exists(self.attrs_file):
            self.disk.create(self.attrs_file)

    @property
    def version(self) -> int:
        """Mutation counter: bumped on every insert/delete/rebuild.

        Lets ``repro.parallel`` cache shard plans per index state and
        invalidate them when the underlying lists change.
        """
        return self._version

    # -------------------------------------------------------------- naming

    @property
    def tuples_file(self) -> str:
        """On-disk name of the tuple list."""
        return f"{self.config.name}.tuples"

    @property
    def attrs_file(self) -> str:
        """On-disk name of the attribute list."""
        return f"{self.config.name}.attrs"

    def vector_file(self, attr_id: int) -> str:
        """On-disk name of one attribute's vector list."""
        return f"{self.config.name}.v{attr_id}"

    # -------------------------------------------------------------- sizing

    @property
    def tuples(self) -> TupleList:
        """The underlying tuple list (shared with ``repro.parallel``)."""
        return self._tuples

    @property
    def tuple_elements(self) -> int:
        """Tuple-list elements, including tombstoned ones."""
        return self._tuples.element_count

    @property
    def deleted_elements(self) -> int:
        """Tombstoned tuple-list elements."""
        return self._tuples.deleted_count

    def total_bytes(self) -> int:
        """Total index footprint (tuple list + attribute list + all vectors)."""
        total = self.disk.size(self.tuples_file) + self.disk.size(self.attrs_file)
        for entry in self._entries:
            total += self.disk.size(self.vector_file(entry.attr.attr_id))
        return total

    def entry(self, attr_id: int) -> Optional[AttributeEntry]:
        """The attribute entry for *attr_id*, or None if unknown."""
        if 0 <= attr_id < len(self._entries):
            return self._entries[attr_id]
        return None

    def entries(self) -> Sequence[AttributeEntry]:
        """All attribute entries in attribute-id order."""
        return tuple(self._entries)

    # --------------------------------------------------------------- build

    @classmethod
    def build(cls, table: SparseWideTable, config: Optional[IVAConfig] = None) -> "IVAFile":
        """Bulk-build the index from the table's live tuples."""
        index = cls(table, config)
        index.rebuild()
        return index

    @classmethod
    def attach(cls, table: SparseWideTable, config: Optional[IVAConfig] = None) -> "IVAFile":
        """Re-open an existing index from its on-disk files.

        Rebuilds the in-memory attribute entries from the attribute list
        and the tuple-list offset map with one sequential pass — the
        durability counterpart of :meth:`SparseWideTable.attach`.
        """
        config = config or IVAConfig()
        disk = table.disk
        for file_name in (f"{config.name}.tuples", f"{config.name}.attrs"):
            if not disk.exists(file_name):
                raise IndexError_(f"cannot attach: missing file {file_name!r}")
        index = cls(table, config)
        index._tuples.attach()
        entries: List[AttributeEntry] = []
        attrs_size = disk.size(index.attrs_file)
        count = attrs_size // _ATTR_ELEMENT.size
        reader = BufferedReader(disk, index.attrs_file, 0)
        for attr_id in range(count):
            raw = reader.read(_ATTR_ELEMENT.size)
            (
                list_type_value,
                kind,
                codec_code,
                alpha,
                n,
                df,
                str_count,
                lo,
                hi,
                vector_bytes,
                list_size,
                last_key,
            ) = _ATTR_ELEMENT.unpack(raw)
            attr = table.catalog.by_id(attr_id)
            stored_text = kind == _KIND_TEXT
            if stored_text != attr.is_text:
                raise IndexError_(
                    f"attribute list disagrees with the catalog on the kind "
                    f"of attribute {attr.name!r} (id {attr_id})"
                )
            has_domain = attr.is_numeric and df > 0
            entries.append(
                AttributeEntry(
                    attr=attr,
                    list_type=ListType(list_type_value),
                    alpha=alpha,
                    n=n,
                    df=df,
                    str_count=str_count,
                    lo=lo if has_domain else None,
                    hi=hi if has_domain else None,
                    vector_bytes=vector_bytes,
                    list_size=list_size,
                    codec=codec_for_code(codec_code).name,
                    last_key=last_key,
                )
            )
        index._entries = entries
        return index

    def rebuild(self) -> None:
        """Rebuild every list from the table's current live contents.

        Used at bulk build and for the periodic cleaning of Sec. IV-B.
        Re-derives relative domains, re-runs the list-type selection, and
        drops tombstones.
        """
        self._version += 1
        table = self.table
        config = self.config
        text_entries: Dict[int, List[Tuple[int, Tuple[str, ...]]]] = {}
        numeric_entries: Dict[int, List[Tuple[int, float]]] = {}
        all_tids: List[int] = []
        for record in table.scan():
            all_tids.append(record.tid)
            for attr_id, value in record.cells.items():
                if is_text_value(value):
                    text_entries.setdefault(attr_id, []).append((record.tid, value))
                elif is_numeric_value(value):
                    numeric_entries.setdefault(attr_id, []).append((record.tid, value))
        all_tids.sort()
        for bucket in text_entries.values():
            bucket.sort(key=lambda pair: pair[0])
        for bucket in numeric_entries.values():
            bucket.sort(key=lambda pair: pair[0])

        self._sync_positions = list(range(0, len(all_tids), SYNC_INTERVAL))
        self._sync_offsets = {}
        self._sync_active = True
        self._skip_tables = {}

        from repro.obs import get_tracer

        entries: List[AttributeEntry] = []
        schemes: Dict[float, SignatureScheme] = {}
        with get_tracer().span(
            "codec.encode", codec=config.codec, phase="rebuild"
        ):
            for attr in table.catalog:
                alpha = config.alpha_for(attr.name)
                if attr.is_text:
                    bucket: list = text_entries.get(attr.attr_id, [])
                    scheme = schemes.get(alpha)
                    if scheme is None:
                        scheme = SignatureScheme(alpha, config.n)
                        schemes[alpha] = scheme
                    entry = self._build_text_entry(attr, scheme, bucket, all_tids)
                else:
                    bucket = numeric_entries.get(attr.attr_id, [])
                    entry = self._build_numeric_entry(attr, bucket, all_tids)
                entries.append(entry)
                self._sync_offsets[attr.attr_id] = self._entry_resume_points(
                    entry, bucket, all_tids, self._sync_positions
                )
                self._refresh_skip_table(entry, bucket, all_tids)
        self._entries = entries

        # Tuple list.
        self._tuples.rebuild((tid, table.locate(tid)[0]) for tid in all_tids)

        # Attribute list.
        self.disk.create(self.attrs_file, overwrite=True)
        self.disk.append(
            self.attrs_file, b"".join(entry.pack() for entry in entries)
        )
        logger.info(
            "rebuilt iVA-file %r: %d tuples, %d attributes, %d bytes",
            self.config.name,
            len(all_tids),
            len(entries),
            self.total_bytes(),
        )

    def _build_text_entry(
        self,
        attr: AttributeDef,
        scheme: SignatureScheme,
        entries: List[Tuple[int, Tuple[str, ...]]],
        all_tids: Sequence[int],
    ) -> AttributeEntry:
        codec = get_codec(self.config.codec)
        sizes = codec.text_sizes(scheme, entries, all_tids)
        list_type = sizes.best()
        payload = codec.build_text(list_type, scheme, entries, all_tids)
        file_name = self.vector_file(attr.attr_id)
        self.disk.create(file_name, overwrite=True)
        self.disk.append(file_name, payload)
        def raw_best(raw: VectorListCodec) -> int:
            raw_sizes = raw.text_sizes(scheme, entries, all_tids)
            return min(raw_sizes.type_i, raw_sizes.type_ii, raw_sizes.type_iii)

        self._count_bytes_saved(codec, len(payload), raw_best)
        return AttributeEntry(
            attr=attr,
            list_type=list_type,
            alpha=scheme.alpha,
            n=self.config.n,
            df=len(entries),
            str_count=sum(len(strings) for _, strings in entries),
            list_size=len(payload),
            codec=codec.name,
            last_key=_list_last_key(list_type, entries, all_tids),
            _scheme=scheme,
        )

    def _build_numeric_entry(
        self,
        attr: AttributeDef,
        entries: List[Tuple[int, float]],
        all_tids: Sequence[int],
    ) -> AttributeEntry:
        codec = get_codec(self.config.codec)
        alpha = self.config.alpha_for(attr.name)
        vector_bytes = vector_bytes_for_alpha(alpha)
        sizes = codec.numeric_sizes(vector_bytes, entries, all_tids)
        list_type = sizes.best()
        if entries:
            lo = min(value for _, value in entries)
            hi = max(value for _, value in entries)
        else:
            lo = hi = None
        quantizer = NumericQuantizer.from_domain(
            lo, hi, alpha, reserve_ndf=list_type is ListType.TYPE_IV
        )
        payload = codec.build_numeric(list_type, quantizer, entries, all_tids)
        file_name = self.vector_file(attr.attr_id)
        self.disk.create(file_name, overwrite=True)
        self.disk.append(file_name, payload)
        def raw_best(raw: VectorListCodec) -> int:
            raw_sizes = raw.numeric_sizes(vector_bytes, entries, all_tids)
            return min(raw_sizes.type_i, raw_sizes.type_iv)

        self._count_bytes_saved(codec, len(payload), raw_best)
        return AttributeEntry(
            attr=attr,
            list_type=list_type,
            alpha=alpha,
            n=self.config.n,
            df=len(entries),
            lo=lo,
            hi=hi,
            vector_bytes=vector_bytes,
            list_size=len(payload),
            codec=codec.name,
            last_key=_list_last_key(list_type, entries, all_tids),
            _quantizer=quantizer,
        )

    @staticmethod
    def _count_bytes_saved(codec: VectorListCodec, actual: int, raw_size) -> None:
        """Credit ``repro_codec_bytes_saved_total`` for one built list.

        *raw_size* is a callable producing the bytes the ``raw`` family
        would have chosen for the same entries; only non-raw codecs pay
        the (cheap, arithmetic-only) comparison.
        """
        if codec.name == "raw":
            return
        from repro.obs.metrics import get_registry

        saved = raw_size(get_codec("raw")) - actual
        if saved > 0:
            get_registry().counter(
                "repro_codec_bytes_saved_total",
                {"codec": codec.name},
                help="Vector-list bytes avoided vs. the raw codec family.",
            ).inc(saved)

    def _refresh_skip_table(
        self,
        entry: AttributeEntry,
        bucket: Sequence[Tuple[int, object]],
        all_tids: Sequence[int],
    ) -> None:
        """Recompute one attribute's skip table after its list was built.

        Pure arithmetic over the entries just serialized (like the sync
        directory).  Codecs decline for layouts whose element offsets are
        not derivable without decoding, in which case any stale table is
        dropped.
        """
        attr_id = entry.attr.attr_id
        skip = entry.codec_impl.skip_table(
            entry.list_type,
            entry.attr.is_text,
            entry.scheme if entry.attr.is_text else entry.quantizer,
            bucket,
            all_tids,
        )
        if skip is None:
            self._skip_tables.pop(attr_id, None)
        else:
            self._skip_tables[attr_id] = skip

    def _entry_resume_points(
        self,
        entry: AttributeEntry,
        bucket: Sequence[Tuple[int, object]],
        all_tids: Sequence[int],
        positions: Sequence[int],
    ) -> List[ResumePoint]:
        """Sync-directory resume points for one freshly rebuilt list.

        Delegated to the entry's codec: pure arithmetic over the same
        ``(tid, value)`` entries the builder just serialized — no payload
        parsing, no I/O.
        """
        if not positions:
            return []
        codec = entry.codec_impl
        if entry.attr.is_text:
            return codec.text_resume_points(
                entry.list_type, entry.scheme, bucket, all_tids, positions
            )
        return codec.numeric_resume_points(
            entry.list_type, entry.vector_bytes, bucket, all_tids, positions
        )

    def sync_checkpoints(
        self, attr_ids: Sequence[int]
    ) -> Optional[Tuple[List[int], Dict[int, Sequence[ResumePoint]]]]:
        """The checkpoint directory restricted to *attr_ids*.

        Returns ``(positions, {attr_id: resume_points})`` — ascending
        tuple-list element positions and, aligned with them, each
        attribute's :class:`~repro.core.scan.ResumePoint` — or ``None``
        when the directory is unavailable (attached index or empty
        table).  Attributes the index holds no list for resume at the
        list head (the null scanner ignores the point anyway).
        """
        if not self._sync_active or not self._sync_positions:
            return None
        zeros: Optional[List[ResumePoint]] = None
        offsets: Dict[int, Sequence[ResumePoint]] = {}
        for attr_id in attr_ids:
            rows = self._sync_offsets.get(attr_id)
            if rows is None:
                if zeros is None:
                    zeros = [
                        ResumePoint(position=pos) for pos in self._sync_positions
                    ]
                rows = zeros
            offsets[attr_id] = rows
        return list(self._sync_positions), offsets

    # ------------------------------------------------------------- updates

    def insert(self, tid: int, cells: Dict[int, CellValue]) -> None:
        """Index a freshly inserted tuple (append to all affected tails).

        Positional lists (Types III/IV) receive an element for *every*
        insert; tid-based lists only when the tuple defines the attribute.
        Attributes registered after the last rebuild get a fresh (tid-based)
        list on first sight.
        """
        self._version += 1
        self._register_new_attributes()
        ptr, _ = self.table.locate(tid)
        # Extend the checkpoint directory before any payload lands: the new
        # element's position checkpoints at every list's current tail.
        position = self._tuples.element_count
        if self._sync_active and position % SYNC_INTERVAL == 0:
            self._sync_positions.append(position)
            for entry in self._entries:
                self._sync_offsets[entry.attr.attr_id].append(
                    ResumePoint(
                        offset=entry.list_size,
                        prev_key=entry.last_key,
                        position=position,
                    )
                )
        self._tuples.append(tid, ptr)
        for entry in self._entries:
            attr_id = entry.attr.attr_id
            value = cells.get(attr_id)
            if value is None and not entry.is_positional:
                continue
            payload, entry.last_key = self._encode_insert(
                entry, tid, value, position
            )
            if payload:
                self.disk.append(self.vector_file(attr_id), payload)
                entry.list_size += len(payload)
            if value is not None:
                entry.df += 1
                if entry.attr.is_text:
                    entry.str_count += len(value)  # type: ignore[arg-type]
            if payload or value is not None:
                # Keep the attribute-list element (ptr2 / df / str) current.
                self._rewrite_attr_element(attr_id)

    def _encode_insert(
        self,
        entry: AttributeEntry,
        tid: int,
        value: Optional[CellValue],
        position: int,
    ) -> Tuple[bytes, int]:
        """One tuple's tail bytes and the list's new decoding base."""
        codec = entry.codec_impl
        if entry.attr.is_text:
            return codec.append_text(
                entry.list_type,
                entry.scheme,
                tid,
                value,  # tuple of str or None
                prev_key=entry.last_key,
                position=position,
            )
        return codec.append_numeric(
            entry.list_type,
            entry.quantizer,
            tid,
            value,
            prev_key=entry.last_key,
            position=position,
        )

    def rebuild_attribute(self, attr_id: int) -> None:
        """Rebuild one attribute's vector list from the base table.

        The quarantine-and-repair path of :mod:`repro.storage.fsck`: the
        table file is the source of truth, so a corrupt vector list can be
        dropped and re-derived without touching sibling lists or the tuple
        list.  The entry keeps its recorded codec, α and n (a repaired
        mixed-codec index stays mixed); the list type is re-selected for
        the current contents and the attribute-list element is rewritten.
        """
        entry = self.entry(attr_id)
        if entry is None:
            raise IndexError_(f"no attribute entry for id {attr_id}")
        self._version += 1
        attr = entry.attr
        codec = entry.codec_impl
        # Positional layouts carry one element per tuple-list element,
        # tombstones included, so rebuild against the full element order.
        all_tids = list(self._tuples.element_tids())
        wanted = set(all_tids)
        bucket: List[Tuple[int, CellValue]] = []
        for record in self.table.scan():
            if record.tid not in wanted:
                continue
            value = record.cells.get(attr_id)
            if value is None:
                continue
            matches = is_text_value(value) if attr.is_text else is_numeric_value(value)
            if matches:
                bucket.append((record.tid, value))
        bucket.sort(key=lambda pair: pair[0])

        from repro.obs import get_tracer

        with get_tracer().span(
            "codec.encode", codec=codec.name, phase="repair", attr=attr.name
        ):
            if attr.is_text:
                scheme = SignatureScheme(entry.alpha, entry.n)
                sizes = codec.text_sizes(scheme, bucket, all_tids)
                list_type = sizes.best()
                payload = codec.build_text(list_type, scheme, bucket, all_tids)
                new_entry = AttributeEntry(
                    attr=attr,
                    list_type=list_type,
                    alpha=entry.alpha,
                    n=entry.n,
                    df=len(bucket),
                    str_count=sum(len(strings) for _, strings in bucket),
                    list_size=len(payload),
                    codec=codec.name,
                    last_key=_list_last_key(list_type, bucket, all_tids),
                    _scheme=scheme,
                )
            else:
                vector_bytes = vector_bytes_for_alpha(entry.alpha)
                sizes = codec.numeric_sizes(vector_bytes, bucket, all_tids)
                list_type = sizes.best()
                if bucket:
                    lo = min(value for _, value in bucket)
                    hi = max(value for _, value in bucket)
                else:
                    lo = hi = None
                quantizer = NumericQuantizer.from_domain(
                    lo, hi, entry.alpha, reserve_ndf=list_type is ListType.TYPE_IV
                )
                payload = codec.build_numeric(
                    list_type, quantizer, bucket, all_tids
                )
                new_entry = AttributeEntry(
                    attr=attr,
                    list_type=list_type,
                    alpha=entry.alpha,
                    n=entry.n,
                    df=len(bucket),
                    lo=lo,
                    hi=hi,
                    vector_bytes=vector_bytes,
                    list_size=len(payload),
                    codec=codec.name,
                    last_key=_list_last_key(list_type, bucket, all_tids),
                    _quantizer=quantizer,
                )
        file_name = self.vector_file(attr_id)
        self.disk.create(file_name, overwrite=True)
        if payload:
            self.disk.append(file_name, payload)
        self._entries[attr_id] = new_entry
        self._rewrite_attr_element(attr_id)
        self._refresh_skip_table(new_entry, bucket, all_tids)
        if self._sync_active:
            self._sync_offsets[attr_id] = self._entry_resume_points(
                new_entry, bucket, all_tids, self._sync_positions
            )
        logger.info(
            "rebuilt vector list %r from the base table (%d defined tuples)",
            file_name,
            len(bucket),
        )

    def delete(self, tid: int) -> None:
        """Tombstone a tuple: rewrite its tuple-list ptr (Sec. IV-B).

        Vector lists and the table file are untouched; scanning skips the
        tuple while positional alignment is preserved.
        """
        self._version += 1
        self._tuples.mark_deleted(tid)

    def _register_new_attributes(self) -> None:
        for attr in self.table.catalog:
            if attr.attr_id < len(self._entries):
                continue
            file_name = self.vector_file(attr.attr_id)
            if not self.disk.exists(file_name):
                self.disk.create(file_name)
            alpha = self.config.alpha_for(attr.name)
            entry = AttributeEntry(
                attr=attr,
                list_type=ListType.TYPE_I,
                alpha=alpha,
                n=self.config.n,
                vector_bytes=0 if attr.is_text else vector_bytes_for_alpha(alpha),
                codec=self.config.codec,
            )
            if attr.is_numeric:
                stats = self.table.stats.per_attribute.get(attr.attr_id)
                if stats is not None:
                    entry.lo = stats.min_value
                    entry.hi = stats.max_value
            self._entries.append(entry)
            self.disk.append(self.attrs_file, entry.pack())
            if self._sync_active:
                # The list was empty at every earlier sync point.
                self._sync_offsets[attr.attr_id] = [
                    ResumePoint(position=pos) for pos in self._sync_positions
                ]

    def _rewrite_attr_element(self, attr_id: int) -> None:
        offset = attr_id * _ATTR_ELEMENT.size
        self.disk.write(self.attrs_file, offset, self._entries[attr_id].pack())

    # -------------------------------------------------------------- queries

    def open_scan(
        self, attr_ids: Sequence[int], end_element: Optional[int] = None
    ) -> "IVAScan":
        """Open a synchronized partial scan over the given attributes.

        *end_element* bounds the scan to the first ``end_element``
        tuple-list elements — the serving tier's snapshot watermark, so a
        reader pinned to a committed element count never observes appends
        that landed after its snapshot was taken.  ``None`` scans
        everything (and the bound is snapped at construction, so elements
        appended mid-scan are excluded either way).
        """
        return IVAScan(self, attr_ids, end_element=end_element)

    def read_attr_elements(self, attr_ids: Sequence[int]) -> None:
        """Charge the attribute-list reads of Algorithm 1 (lines 2–3).

        Fetches ptr1/metadata for each related attribute; shared by the
        sequential scan and the parallel executor so both pay the same
        per-query setup cost.
        """
        for attr_id in attr_ids:
            offset = attr_id * _ATTR_ELEMENT.size
            if offset + _ATTR_ELEMENT.size <= self.disk.size(self.attrs_file):
                self.disk.read(self.attrs_file, offset, _ATTR_ELEMENT.size)

    def make_scanner(
        self, attr_id: int, start: Union[int, ResumePoint] = 0
    ) -> VectorListScanner:
        """A fresh scanning pointer over one attribute's list.

        *start* is a :class:`~repro.core.scan.ResumePoint` — normally the
        list head, or a point recorded by
        :meth:`~repro.core.scan.VectorListScanner.checkpoint` / the sync
        directory when resuming a scan mid-list (shard workers in
        ``repro.parallel``).  A bare ``int`` byte offset is accepted for
        back-compatibility; delta-coded lists need the full resume point.
        """
        resume = ResumePoint(offset=start) if isinstance(start, int) else start
        entry = self.entry(attr_id)
        if entry is None:
            return _NullScanner()
        codec = entry.codec_impl
        reader = BufferedReader(self.disk, self.vector_file(attr_id), resume.offset)
        skip = self._skip_tables.get(attr_id)
        if entry.attr.is_text:
            return codec.text_scanner(
                entry.list_type, reader, entry.scheme, resume, skip=skip
            )
        return codec.numeric_scanner(
            entry.list_type, reader, entry.quantizer, resume, skip=skip
        )


class IVAScan:
    """One query's synchronized scan state (Sec. IV-A).

    Iterating yields ``(tid, ptr)`` tuple-list elements in order;
    ``ptr == DELETED_PTR`` flags tombstones (the caller must still have
    driven every scanner for that element — :meth:`payloads` does).
    """

    def __init__(
        self,
        index: IVAFile,
        attr_ids: Sequence[int],
        end_element: Optional[int] = None,
    ) -> None:
        self.index = index
        # Reading the attribute-list elements of the queried attributes
        # (line 2-3 of Algorithm 1: fetch ptr1 for each related attribute).
        index.read_attr_elements(attr_ids)
        self.attr_ids = tuple(attr_ids)
        self.scanners = [index.make_scanner(attr_id) for attr_id in attr_ids]
        # Snapshot the scan bound at construction: elements appended after
        # this point are invisible to this scan even without an explicit
        # watermark.
        count = index._tuples.element_count
        self.end_element = count if end_element is None else min(end_element, count)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return self.index._tuples.scan_range(0, self.end_element)

    def payloads(self, tid: int) -> List[object]:
        """Drive every scanner to *tid*; aligned with ``attr_ids``."""
        return [scanner.move_to(tid) for scanner in self.scanners]

    def blocks(self, block_elements: int):
        """Yield ``(tids, ptrs)`` tuple-list columns, one block at a time."""
        return self.index._tuples.scan_range_blocks(
            0, self.end_element, block_elements
        )

    def payload_blocks(self, tids: Sequence[int]) -> List[List[object]]:
        """Drive every scanner through one block; one payload column per
        attribute, aligned with ``attr_ids``."""
        return [scanner.move_block(tids) for scanner in self.scanners]

    def segment_blocks(self, tids: Sequence[int]) -> List[object]:
        """Drive every scanner through one block, columnar (v3 kernel).

        One :mod:`repro.core.segment` object per attribute, aligned with
        ``attr_ids``.  A scan must use either this or the scalar entry
        points, never both — segment decoders may hold read-ahead state.
        """
        return [scanner.decode_segment(tids) for scanner in self.scanners]
