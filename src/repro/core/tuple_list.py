"""The tuple list shared by scan-based indices (Sec. III-D / IV-B).

A sequence of ``<tid u32, ptr u64>`` elements sorted by tid; ``ptr`` is the
tuple's offset in the table file and is rewritten to :data:`DELETED_PTR`
when the tuple is deleted.  Both the iVA-file and the inverted-index
baseline scan this list to enumerate the tuples being filtered.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Iterator, Tuple

from repro.errors import IndexError_
from repro.storage import BufferedReader, StorageBackend

ELEMENT = struct.Struct("<IQ")

#: Sentinel ptr marking a deleted tuple (Sec. IV-B).
DELETED_PTR = (1 << 64) - 1


class TupleList:
    """Disk-resident tuple list with an in-memory tid → offset map."""

    def __init__(self, disk: StorageBackend, file_name: str) -> None:
        self.disk = disk
        self.file_name = file_name
        self._offsets: Dict[int, int] = {}
        self._count = 0
        self._deleted = 0
        if not disk.exists(file_name):
            disk.create(file_name)

    @property
    def element_count(self) -> int:
        """Elements in the list, tombstones included."""
        return self._count

    @property
    def deleted_count(self) -> int:
        """Number of tombstoned elements."""
        return self._deleted

    @property
    def byte_size(self) -> int:
        """Serialized size of the list in bytes."""
        return self.disk.size(self.file_name)

    def rebuild(self, elements: Iterable[Tuple[int, int]]) -> None:
        """Rewrite the list from scratch with live ``(tid, ptr)`` pairs."""
        self.disk.create(self.file_name, overwrite=True)
        payload = bytearray()
        offsets: Dict[int, int] = {}
        count = 0
        previous = -1
        for tid, ptr in elements:
            if tid <= previous:
                raise IndexError_("tuple list elements must have increasing tids")
            previous = tid
            offsets[tid] = count * ELEMENT.size
            payload += ELEMENT.pack(tid, ptr)
            count += 1
        self.disk.append(self.file_name, bytes(payload))
        self._offsets = offsets
        self._count = count
        self._deleted = 0

    def append(self, tid: int, ptr: int) -> None:
        """Add a fresh tuple at the tail (inserts, Sec. IV-B)."""
        if tid in self._offsets:
            raise IndexError_(f"tid {tid} is already in the tuple list")
        offset = self.disk.append(self.file_name, ELEMENT.pack(tid, ptr))
        self._offsets[tid] = offset
        self._count += 1

    def mark_deleted(self, tid: int) -> None:
        """Rewrite the element's ptr with the deletion sentinel."""
        offset = self._offsets.get(tid)
        if offset is None:
            raise IndexError_(f"tid {tid} is not in the tuple list")
        raw = self.disk.read(self.file_name, offset, ELEMENT.size)
        stored_tid, ptr = ELEMENT.unpack(raw)
        if stored_tid != tid:
            raise IndexError_(
                f"tuple list corrupt: expected tid {tid} at offset {offset}, "
                f"found {stored_tid}"
            )
        if ptr == DELETED_PTR:
            raise IndexError_(f"tid {tid} is already deleted")
        self.disk.write(self.file_name, offset, ELEMENT.pack(tid, DELETED_PTR))
        self._deleted += 1

    def attach(self) -> None:
        """Rebuild the in-memory offset map from the on-disk list.

        Used when re-opening an index: the list's file already exists; one
        sequential pass recovers element offsets, counts and tombstones.
        """
        offsets: Dict[int, int] = {}
        count = 0
        deleted = 0
        for tid, ptr in self.scan():
            offsets[tid] = count * ELEMENT.size
            count += 1
            if ptr == DELETED_PTR:
                deleted += 1
        self._offsets = offsets
        self._count = count
        self._deleted = deleted

    def element_tids(self) -> Tuple[int, ...]:
        """Every element's tid in list order (tombstones included).

        Served from the in-memory offset map — index metadata the list
        already maintains — so planning shard boundaries charges no I/O.
        """
        return tuple(self._offsets)

    def scan(self) -> Iterator[Tuple[int, int]]:
        """Sequentially yield ``(tid, ptr)`` for every element, in order."""
        reader = BufferedReader(self.disk, self.file_name, 0)
        size = ELEMENT.size
        while not reader.exhausted():
            yield ELEMENT.unpack(reader.read(size))

    def scan_range(self, start_element: int, end_element: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(tid, ptr)`` for element positions ``[start, end)``.

        The shard-scan entry point of :mod:`repro.parallel`: each worker
        reads only its own contiguous slice of the list (one sequential
        stream per shard).
        """
        if not 0 <= start_element <= end_element <= self._count:
            raise IndexError_(
                f"bad tuple-list range [{start_element}, {end_element}) "
                f"over {self._count} elements"
            )
        size = ELEMENT.size
        reader = BufferedReader(
            self.disk, self.file_name, start_element * size, end_element * size
        )
        while not reader.exhausted():
            yield ELEMENT.unpack(reader.read(size))

    def scan_blocks(
        self, block_elements: int
    ) -> Iterator[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Yield ``(tids, ptrs)`` column pairs, *block_elements* at a time.

        The block filter kernel's tuple-list feed: one ``iter_unpack`` call
        decodes a whole block instead of one ``unpack`` per element.  The
        same bytes stream by in the same order, so modeled I/O is identical
        to :meth:`scan`; only Python call counts change.  The final block
        may be short.
        """
        yield from self.scan_range_blocks(0, self._count, block_elements)

    def scan_range_blocks(
        self, start_element: int, end_element: int, block_elements: int
    ) -> Iterator[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Yield ``(tids, ptrs)`` column pairs over ``[start, end)``.

        The block counterpart of :meth:`scan_range`, used by parallel shard
        workers running the block kernel.
        """
        if not 0 <= start_element <= end_element <= self._count:
            raise IndexError_(
                f"bad tuple-list range [{start_element}, {end_element}) "
                f"over {self._count} elements"
            )
        if block_elements < 1:
            raise IndexError_(f"block size must be >= 1, got {block_elements}")
        size = ELEMENT.size
        reader = BufferedReader(
            self.disk, self.file_name, start_element * size, end_element * size
        )
        remaining = end_element - start_element
        while remaining > 0:
            count = block_elements if remaining > block_elements else remaining
            raw = reader.read(count * size)
            columns = tuple(zip(*ELEMENT.iter_unpack(raw)))
            yield columns[0], columns[1]
            remaining -= count
