"""Batched query processing: one synchronized scan, many queries.

A CWMS front-end serves many concurrent searches; since Algorithm 1's
filter phase is a sequential scan, queries can share it.  The batch engine
opens one scan over the *union* of the queries' attributes, evaluates
every query's bounds per tuple, keeps one pool per query, and — when a
tuple is a candidate for several queries at once — fetches it from the
table file once.

Answers are identical to running the queries one by one (each pool runs
the same Algorithm 1 decision); only the cost changes: index-scan I/O is
paid once per batch instead of once per query, and overlapping candidate
sets share their random accesses.
"""

from __future__ import annotations

import logging
import time
from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence, Union

from repro.core.engine import QueryResult, SearchReport, validate_fail_mode
from repro.core.iva_file import DELETED_PTR, IVAFile
from repro.core.kernel import (
    BLOCK_TUPLES,
    KernelCache,
    QueryKernel,
    validate_kernel_mode,
)
from repro.core.pool import ResultPool
from repro.core.signature import QueryStringEncoder
from repro.errors import DeadlineExceeded, QueryError, ReproError
from repro.metrics.distance import DistanceFunction
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.profile import ProfileCollector
from repro.obs.trace import Tracer, get_tracer
from repro.query import Query
from repro.storage.table import SparseWideTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.config import ExecutorConfig

logger = logging.getLogger(__name__)


class BatchIVAEngine:
    """Shared-scan execution of a batch of top-k queries."""

    name = "iVA-batch"

    def __init__(
        self,
        table: SparseWideTable,
        index: IVAFile,
        distance: Optional[DistanceFunction] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        parallelism: Optional[int] = None,
        executor: Optional["ExecutorConfig"] = None,
        kernel: str = "scalar",
        fail_mode: str = "raise",
        profile: bool = False,
        kernel_cache: Optional[KernelCache] = None,
        scan_end_element: Optional[int] = None,
        shard_planner=None,
    ) -> None:
        self.table = table
        self.index = index
        self.distance = distance or DistanceFunction()
        #: Optional shared compiled-term cache, snapshot watermark and
        #: shard planner — same semantics as on
        #: :class:`~repro.core.engine.FilterAndRefineEngine`; the serving
        #: daemon injects all three per index snapshot.
        self.kernel_cache = kernel_cache
        self.scan_end_element = scan_end_element
        self.shard_planner = shard_planner
        #: When True every report in the batch carries an EXPLAIN ANALYZE
        #: artifact (``SearchReport.profile``); see :mod:`repro.obs.profile`.
        self.profile = profile
        #: Filter strategy: ``"scalar"`` or ``"block"`` (see
        #: :mod:`repro.core.kernel`); answers are bit-identical.
        self.kernel = validate_kernel_mode(kernel)
        #: Scan-failure policy (see :class:`FilterAndRefineEngine`): the
        #: parallel path walks the shard-recovery ladder and flags every
        #: report in the batch ``degraded`` when a shard stays lost.
        self.fail_mode = validate_fail_mode(fail_mode)
        self.registry = registry
        self.tracer = tracer
        if executor is None and parallelism is not None:
            from repro.parallel.config import ExecutorConfig

            executor = ExecutorConfig(workers=parallelism)
        #: Parallel-execution configuration; None means always sequential.
        self.executor = executor

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    def _tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else get_tracer()

    def _prepare(self, queries: Sequence[Union[Query, Mapping[str, object]]]) -> List[Query]:
        bound: List[Query] = []
        for query in queries:
            if isinstance(query, Mapping):
                bound.append(Query.from_dict(self.table.catalog, query))
            elif isinstance(query, Query):
                bound.append(query)
            else:
                raise QueryError(f"cannot interpret {query!r} as a query")
        return bound

    def search_batch(
        self,
        queries: Sequence[Union[Query, Mapping[str, object]]],
        k: int = 10,
        distance: Optional[DistanceFunction] = None,
        deadline_s: Optional[float] = None,
    ) -> List[SearchReport]:
        """Run all *queries* in one pass; reports align with the input.

        Dispatches the shared scan to the parallel executor when one is
        configured; the sequential loop runs otherwise (or as the fallback
        when the pool cannot start).  Both paths return bit-identical
        answers.

        *deadline_s* is a wall-clock budget for the whole batch: on expiry
        ``fail_mode="degrade"`` flags every report ``degraded``/
        ``deadline_hit`` (the shared scan was cut for all of them), while
        ``fail_mode="raise"`` raises :class:`~repro.errors.DeadlineExceeded`.
        """
        if not queries:
            return []
        bound = self._prepare(queries)
        deadline = (
            time.perf_counter() + deadline_s if deadline_s is not None else None
        )
        config = self.executor
        if config is not None and config.effective_workers() > 1:
            from repro.parallel.executor import (
                ParallelExecutionError,
                parallel_search_batch,
            )

            try:
                return parallel_search_batch(
                    self, bound, k=k, distance=distance, deadline=deadline
                )
            except ParallelExecutionError as exc:
                if not config.fallback:
                    raise
                logger.warning(
                    "parallel batch execution failed, running sequentially: %s", exc
                )
                self._registry().counter(
                    "repro_parallel_fallbacks_total",
                    labels={"engine": self.name},
                    help="Searches that fell back to the sequential path.",
                ).inc()
        return self._sequential_search_batch(bound, k, distance, deadline=deadline)

    def _sequential_search_batch(
        self,
        bound: Sequence[Query],
        k: int = 10,
        distance: Optional[DistanceFunction] = None,
        deadline: Optional[float] = None,
    ) -> List[SearchReport]:
        """The inline shared-scan loop.

        Cost attribution: the batch's shared I/O (the single scan, the
        de-duplicated table fetches) is reported once on the *first*
        report; ``tuples_scanned`` and ``table_accesses`` stay per-query
        ("how many tuples this query refined" — several queries refining
        the same tuple share one physical fetch).
        """
        dist = distance or self.distance
        attr_ids = sorted({t.attr.attr_id for q in bound for t in q.terms})
        position = {attr_id: i for i, attr_id in enumerate(attr_ids)}
        scan = self.index.open_scan(attr_ids, end_element=self.scan_end_element)
        n = self.index.config.n

        kernels: Optional[List[QueryKernel]] = None
        encoders = {}
        quantizers = {}
        if self.kernel in ("block", "v3"):
            # One shared compiled artifact for the whole batch: queries
            # naming the same term reuse one set of gram masks and lookup
            # tables (and the per-block column cache keys on that identity).
            shared_terms = (
                self.kernel_cache if self.kernel_cache is not None else KernelCache()
            )
            kernels = [
                QueryKernel.compile(self.index, q, dist, position, cache=shared_terms)
                for q in bound
            ]
        else:
            for query in bound:
                for term in query.terms:
                    attr_id = term.attr.attr_id
                    if term.attr.is_text:
                        key = (attr_id, str(term.value))
                        if key not in encoders:
                            encoders[key] = QueryStringEncoder(str(term.value), n)
                    else:
                        entry = self.index.entry(attr_id)
                        quantizers[attr_id] = entry.quantizer if entry else None

        pools = [ResultPool(k) for _ in bound]
        reports = [SearchReport() for _ in bound]
        collectors: Optional[List[ProfileCollector]] = (
            [ProfileCollector.for_query(q, position) for q in bound]
            if self.profile
            else None
        )
        ndf_penalty = dist.ndf_penalty
        disk = self.table.disk
        io_start = disk.stats.io_time_ms
        wall_start = time.perf_counter()
        refine_io = 0.0
        refine_wall = 0.0

        last_tid = -1
        try:
            if kernels is not None:
                for tids, ptrs in scan.blocks(BLOCK_TUPLES):
                    # One deadline check per block: the block is the unit
                    # of decode work, so a finer check buys nothing.
                    if deadline is not None and time.perf_counter() > deadline:
                        raise DeadlineExceeded(
                            f"batch deadline expired after tid {last_tid}"
                        )
                    count = len(tids)
                    block_cache: dict = {}
                    if self.kernel == "v3":
                        segments = scan.segment_blocks(tids)
                        if collectors is not None:
                            for collector in collectors:
                                collector.on_segments(segments, count)
                        evaluated = [
                            kern.evaluate_segments(segments, count, block_cache)
                            for kern in kernels
                        ]
                    else:
                        columns = scan.payload_blocks(tids)
                        if collectors is not None:
                            for collector in collectors:
                                collector.on_block(columns, count)
                        evaluated = [
                            kern.evaluate_block(columns, count, block_cache)
                            for kern in kernels
                        ]
                    for i in range(count):
                        if ptrs[i] == DELETED_PTR:
                            continue
                        tid = tids[i]
                        last_tid = tid
                        record = None
                        for qi, query in enumerate(bound):
                            reports[qi].tuples_scanned += 1
                            estimated = evaluated[qi][0][i]
                            exact = evaluated[qi][1][i]
                            pool = pools[qi]
                            if exact:
                                pool.insert(tid, estimated)
                                reports[qi].exact_shortcuts += 1
                                if collectors is not None:
                                    collectors[qi].on_exact()
                                continue
                            if not pool.is_candidate(estimated, tid):
                                if collectors is not None:
                                    collectors[qi].on_pruned()
                                continue
                            if record is None:
                                io_before = disk.stats.io_time_ms
                                wall_before = time.perf_counter()
                                record = self.table.read(tid)
                                refine_io += disk.stats.io_time_ms - io_before
                                refine_wall += time.perf_counter() - wall_before
                            reports[qi].table_accesses += 1
                            actual = dist.actual(query, record)
                            pool.insert(tid, actual)
                            if collectors is not None:
                                collectors[qi].on_candidate()
                                collectors[qi].on_refined(estimated, actual)
            else:
                for tid, ptr in scan:
                    if deadline is not None and time.perf_counter() > deadline:
                        raise DeadlineExceeded(
                            f"batch deadline expired after tid {last_tid}"
                        )
                    payloads = scan.payloads(tid)
                    # Like the single-query scalar filter: probe before the
                    # tombstone check so entry counts match the block path.
                    if collectors is not None:
                        for collector in collectors:
                            collector.on_payloads(payloads)
                    if ptr == DELETED_PTR:
                        continue
                    last_tid = tid
                    record = None
                    text_bound_cache = {}
                    for qi, query in enumerate(bound):
                        reports[qi].tuples_scanned += 1
                        diffs: List[float] = []
                        exact = True
                        for term in query.terms:
                            attr_id = term.attr.attr_id
                            payload = payloads[position[attr_id]]
                            if payload is None:
                                diffs.append(ndf_penalty)
                                continue
                            exact = False
                            if term.attr.is_text:
                                key = (attr_id, str(term.value))
                                cached = text_bound_cache.get(key)
                                if cached is None:
                                    encoder = encoders[key]
                                    cached = min(
                                        encoder.lower_bound(s) for s in payload
                                    )
                                    text_bound_cache[key] = cached
                                diffs.append(cached)
                            else:
                                diffs.append(
                                    quantizers[attr_id].lower_bound(
                                        float(term.value), payload
                                    )
                                )
                        pool = pools[qi]
                        estimated = dist.combine_bounds(query, diffs)
                        if exact:
                            pool.insert(tid, estimated)
                            reports[qi].exact_shortcuts += 1
                            if collectors is not None:
                                collectors[qi].on_exact()
                            continue
                        if not pool.is_candidate(estimated, tid):
                            if collectors is not None:
                                collectors[qi].on_pruned()
                            continue
                        if record is None:
                            io_before = disk.stats.io_time_ms
                            wall_before = time.perf_counter()
                            record = self.table.read(tid)
                            refine_io += disk.stats.io_time_ms - io_before
                            refine_wall += time.perf_counter() - wall_before
                        reports[qi].table_accesses += 1
                        actual = dist.actual(query, record)
                        pool.insert(tid, actual)
                        if collectors is not None:
                            collectors[qi].on_candidate()
                            collectors[qi].on_refined(estimated, actual)
        except ReproError as exc:
            if self.fail_mode != "degrade":
                raise
            # Degrade-don't-die, batch-wide: the shared scan was cut for
            # every query, so every report carries the degradation flags
            # and the uncovered tail (-1 = through end of scan).
            hit = isinstance(exc, DeadlineExceeded)
            for report in reports:
                report.degraded = True
                report.deadline_hit = hit
                report.lost_tid_ranges.append((last_tid + 1, -1))
            logger.warning(
                "batch scan failed after tid %d; returning degraded results: %s",
                last_tid,
                exc,
            )

        total_io = disk.stats.io_time_ms - io_start
        total_wall = time.perf_counter() - wall_start
        # Shared batch costs are attributed to the first report (the batch
        # ran once); per-query counters above stay exact.
        reports[0].refine_io_ms = refine_io
        reports[0].refine_wall_s = refine_wall
        reports[0].filter_io_ms = total_io - refine_io
        reports[0].filter_wall_s = total_wall - refine_wall
        for qi, pool in enumerate(pools):
            reports[qi].results = [
                QueryResult(tid=e.tid, distance=e.distance) for e in pool.results()
            ]
        if collectors is not None:
            metric = getattr(dist.metric, "name", "")
            for qi, collector in enumerate(collectors):
                reports[qi].profile = collector.build(
                    reports[qi],
                    query=bound[qi],
                    index=self.index,
                    engine=self.name,
                    kernel=self.kernel,
                    fail_mode=self.fail_mode,
                    metric=metric,
                    k=k,
                )
        return reports
