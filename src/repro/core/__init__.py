"""The iVA-file: the paper's primary contribution.

* :mod:`repro.core.ngram` — positional n-gram multisets and the
  Gravano-style edit-distance lower bound ``est'`` (Eq. 1).
* :mod:`repro.core.signature` — the nG-signature encoding of strings and the
  hit-gram-set estimate ``est`` (Eq. 3, Prop. 3.3: no false negatives).
* :mod:`repro.core.params` — the Eq. 5 error model and optimal-``t`` table.
* :mod:`repro.core.numeric` — relative-domain scalar quantisation (Sec. III-C).
* :mod:`repro.core.vector_lists` — the four vector-list layouts and their
  size-based auto-selection (Sec. III-D).
* :mod:`repro.core.iva_file` — the index proper: tuple list, attribute list,
  per-attribute vector lists; build / insert / delete / rebuild.
* :mod:`repro.core.scan` — scanning pointers with MoveTo/freeze semantics.
* :mod:`repro.core.pool` — the bounded top-k result pool.
* :mod:`repro.core.engine` — Algorithm 1, the parallel filter-and-refine plan.
"""

from repro.core.iva_file import IVAConfig, IVAFile
from repro.core.engine import IVAEngine, SearchReport, QueryResult
from repro.core.pool import ResultPool
from repro.core.signature import Signature, SignatureScheme, QueryStringEncoder
from repro.core.numeric import NumericQuantizer

__all__ = [
    "IVAConfig",
    "IVAFile",
    "IVAEngine",
    "SearchReport",
    "QueryResult",
    "ResultPool",
    "Signature",
    "SignatureScheme",
    "QueryStringEncoder",
    "NumericQuantizer",
]
