"""Positional n-grams and the exact-gram edit-distance lower bound.

Follows Sec. III-B.1/2 of the paper: a string ``s`` is extended with
``n − 1`` '#' prefix characters and ``n − 1`` '$' suffix characters; every
window of ``n`` consecutive characters of the extension is an n-gram, so
``s`` has exactly ``|s| + n − 1`` grams (Example 3.1).  Grams are kept as a
multiset — "the same n-grams starting at different positions … should not be
merged" — represented as ``{gram: count}``.

``est'(sq, sd)`` (Eq. 1) is the Gravano et al. lower bound computed from the
exact common gram multiset; the signature-based ``est`` of
:mod:`repro.core.signature` approximates it from above on the hit count and
therefore from below on the distance.
"""

from __future__ import annotations

from typing import Dict, List

PREFIX_PAD = "#"
SUFFIX_PAD = "$"


def extend(s: str, n: int) -> str:
    """Pad *s* for gram extraction: ``n−1`` '#' before, ``n−1`` '$' after."""
    if n < 1:
        raise ValueError("gram length n must be >= 1")
    pad = n - 1
    return PREFIX_PAD * pad + s + SUFFIX_PAD * pad


def ngrams(s: str, n: int) -> List[str]:
    """All n-grams of *s* in order; ``len(result) == len(s) + n - 1``."""
    extended = extend(s, n)
    return [extended[i : i + n] for i in range(len(extended) - n + 1)]


def gram_multiset(s: str, n: int) -> Dict[str, int]:
    """The n-gram multiset ``g(s)`` as ``{gram: appearance count}``."""
    counts: Dict[str, int] = {}
    for gram in ngrams(s, n):
        counts[gram] = counts.get(gram, 0) + 1
    return counts


def multiset_size(counts: Dict[str, int]) -> int:
    """``|Ω|`` — the sum of appearance counts (Example 3.3)."""
    return sum(counts.values())


def common_gram_count(s1: str, s2: str, n: int) -> int:
    """``|cg(s1, s2)|`` — size of the common gram multiset (min of counts)."""
    g1 = gram_multiset(s1, n)
    g2 = gram_multiset(s2, n)
    if len(g2) < len(g1):
        g1, g2 = g2, g1
    return sum(min(count, g2[gram]) for gram, count in g1.items() if gram in g2)


def exact_estimate(sq: str, sd: str, n: int) -> float:
    """``est'(sq, sd)`` — Eq. 1; may be negative (clamp for use as a bound).

    Guaranteed ``est'(sq, sd) <= ed(sq, sd)`` (Eq. 2): one edit operation can
    destroy at most ``n`` grams, and the longer string has
    ``max(|sq|,|sd|) + n − 1`` of them.
    """
    common = common_gram_count(sq, sd, n)
    return (max(len(sq), len(sd)) - common - 1) / n + 1


def estimate_from_hits(query_length: int, data_length: int, hits: int, n: int) -> float:
    """Eq. 3's arithmetic, shared by exact and signature-based estimation."""
    return (max(query_length, data_length) - hits - 1) / n + 1
