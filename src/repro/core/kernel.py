"""The block-at-a-time filter kernel: query-compiled lower-bound tables.

The paper's premise (Sec. IV-A) is that the filter phase is a cheap
sequential scan; a per-tuple Python loop re-deriving every bound from
scratch makes interpreter overhead — not I/O — the dominant cost.  The
kernel removes the repeated arithmetic by compiling each query **once**
into lookup tables and then evaluating whole blocks of decoded tuples per
call:

* **numeric terms** become a ``code → lower_bound`` array over the
  quantizer's code space (eager for one-byte vectors, lazily memoised for
  wider codes), each entry produced by
  :meth:`~repro.core.numeric.NumericQuantizer.lower_bound` itself;
* **text terms** become per-stored-length tables: the query's gram masks
  for that signature geometry (most-selective first) plus a
  ``hit_count → bound`` array — :func:`~repro.core.ngram.estimate_from_hits`
  depends only on ``(stored_length, hit_count)``, so the inner loop is a
  popcount-style mask test and a table index;
* **ndf** stays the distance function's constant penalty.

Every table entry is computed by the same scalar routine the
:class:`~repro.core.engine.BoundEvaluator` path calls per tuple, so kernel
bounds are **bit-identical** to scalar bounds — the no-false-negative
contract (Prop. 3.3, open-ended boundary slices) holds by construction,
and the engines assert answer identity in tests, ``make smoke`` and
``repro bench kernel-compare``.

Compiled terms are shared: :class:`KernelCache` deduplicates per
``(attribute, value)`` so parallel shard workers and batched queries reuse
one artifact (gram sets, masks, LUTs) instead of rebuilding
:class:`~repro.core.signature.QueryStringEncoder` state per context.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import fastpath
from repro.core.ngram import estimate_from_hits
from repro.core.numeric import EAGER_LUT_MAX_CODES, NumericQuantizer
from repro.core.signature import QueryStringEncoder
from repro.errors import QueryError
from repro.metrics.distance import (
    DistanceFunction,
    L1Metric,
    L2Metric,
    LInfMetric,
)
from repro.query import Query

#: Tuple-list elements evaluated per kernel call.  One block of the default
#: 12-byte tuple elements spans ~3 KB of the tuple list — well inside one
#: buffered-reader chunk, so blocking changes call counts, not I/O.
BLOCK_TUPLES = 256

#: Valid filter-kernel modes on engines and the CLI's ``--kernel`` flag:
#: ``scalar`` (per-tuple), ``block`` (per-block columns, PR 4) and ``v3``
#: (whole-segment columnar decode + array-wide evaluation).
KERNEL_MODES = ("scalar", "block", "v3")


def _metric_kind(metric) -> Optional[str]:
    """The exact-vectorisable metric family, or None for custom metrics.

    ``type(...) is`` on purpose: a subclass may override ``combine``, and
    only the built-in combine rules have proven bit-identical array
    equivalents (:func:`repro.core.fastpath.combine_columns`).
    """
    kind = type(metric)
    if kind is L1Metric:
        return "L1"
    if kind is L2Metric:
        return "L2"
    if kind is LInfMetric:
        return "Linf"
    return None


def validate_kernel_mode(mode: str) -> str:
    """Return *mode* if it names a filter kernel; raise otherwise."""
    if mode not in KERNEL_MODES:
        raise QueryError(
            f"unknown filter kernel {mode!r}; expected one of {KERNEL_MODES}"
        )
    return mode


class CompiledTextTerm:
    """One text term compiled to per-geometry mask + bound tables.

    Wraps the term's :class:`QueryStringEncoder` (the gram multiset is
    computed once and the popcount-ordered masks are shared with the
    scalar path) and adds, per distinct stored length seen in the data, a
    ``hit_count → bound`` array so the per-signature work collapses to the
    mask tests plus one table index.
    """

    __slots__ = ("encoder", "_per_length")

    def __init__(self, query_string: str, n: int) -> None:
        self.encoder = QueryStringEncoder(query_string, n)
        #: stored_length → (masks, bounds); masks are ``(mask, count)``
        #: pairs ordered most-selective first, ``bounds[hits]`` the clamped
        #: Eq. 3 estimate for that many hits.
        self._per_length: Dict[
            int, Tuple[List[Tuple[int, int]], Tuple[float, ...]]
        ] = {}

    def _compile_length(
        self, stored_length: int, scheme
    ) -> Tuple[List[Tuple[int, int]], Tuple[float, ...]]:
        """Tables for one signature geometry; cached per stored length."""
        l_bits, t = scheme.parameters_for(stored_length)
        masks = self.encoder.masks_for(l_bits, t)
        query_length = self.encoder.query_length
        n = self.encoder.n
        bounds = []
        for hits in range(self.encoder.total_grams + 1):
            est = estimate_from_hits(query_length, stored_length, hits, n)
            bounds.append(est if est > 0.0 else 0.0)
        entry = (masks, tuple(bounds))
        self._per_length[stored_length] = entry
        return entry

    def bound_column(
        self,
        column: Sequence[object],
        scheme,
        out: List[float],
        ndf_penalty: float,
        exact: List[bool],
    ) -> None:
        """Fill ``out`` with this term's lower bound per block element.

        *column* holds one block's decoded payloads: ``None`` for ndf,
        else a list of ``(stored_length, bits)`` pairs.  Clears
        ``exact[i]`` for every defined element.  The per-signature min
        short-circuits at 0.0 — bounds are non-negative, so the min is
        already decided (the scalar ``min(...)`` returns the same value).
        """
        per_length = self._per_length
        for i, payload in enumerate(column):
            if payload is None:
                out[i] = ndf_penalty
                continue
            exact[i] = False
            best: Optional[float] = None
            for stored_length, bits in payload:
                entry = per_length.get(stored_length)
                if entry is None:
                    entry = self._compile_length(stored_length, scheme)
                masks, bounds = entry
                hits = 0
                for mask, count in masks:
                    if mask & bits == mask:
                        hits += count
                bound = bounds[hits]
                if best is None or bound < best:
                    best = bound
                    if best <= 0.0:
                        break
            out[i] = best

    def bound_segment(self, segment, scheme, count: int, ndf_penalty: float):
        """``(bounds, defined)`` arrays for one decoded text segment.

        The per-signature mask tests stay a flat Python loop (the tables
        are exactly the scalar ones, so each value is bit-identical), but
        the per-tuple min-reduce and ndf fill collapse to one vectorised
        scatter.  The scalar path's ``best <= 0.0`` short-circuit is safe
        to drop: bounds are clamped non-negative, so a 0.0 *is* the min.
        """
        per_length = self._per_length
        lengths = segment.lengths
        all_bits = segment.bits
        vals = [0.0] * len(lengths)
        for j, stored_length in enumerate(lengths):
            entry = per_length.get(stored_length)
            if entry is None:
                entry = self._compile_length(stored_length, scheme)
            masks, bounds = entry
            bits = all_bits[j]
            hits = 0
            for mask, gram_count in masks:
                if mask & bits == mask:
                    hits += gram_count
            vals[j] = bounds[hits]
        np = fastpath._np
        slots = segment.slots_array()
        defined = np.zeros(count, dtype=bool)
        defined[slots] = True
        out = fastpath.text_min_scatter(count, slots, vals, defined, ndf_penalty)
        return out, defined

    @property
    def table_lengths(self) -> int:
        """Distinct stored lengths compiled so far (observability)."""
        return len(self._per_length)


class CompiledNumericTerm:
    """One numeric term compiled to a ``code → lower_bound`` table.

    For one-byte vectors (≤ :data:`~repro.core.numeric.EAGER_LUT_MAX_CODES`
    codes) the whole array is materialised at compile time; wider code
    spaces are memoised lazily per observed code.  Either way every entry
    comes from :meth:`NumericQuantizer.lower_bound`, so a hit is
    bit-identical to the scalar call.
    """

    __slots__ = ("quantizer", "query_value", "_table", "_memo", "_lut_np")

    def __init__(
        self, quantizer: Optional[NumericQuantizer], query_value: float
    ) -> None:
        self.quantizer = quantizer
        self.query_value = query_value
        self._lut_np = None
        if quantizer is None:
            # Attribute absent from the index: every payload is None (the
            # null scanner), so no table is ever consulted.
            self._table = None
            self._memo = {}
        elif quantizer.num_slices <= EAGER_LUT_MAX_CODES:
            self._table: Optional[Tuple[float, ...]] = quantizer.lower_bound_table(
                query_value
            )
            self._memo: Optional[Dict[int, float]] = None
            self._lut_np = fastpath.lut_array(self._table)
        else:
            self._table = None
            self._memo = {}

    def bound_column(
        self,
        column: Sequence[object],
        out: List[float],
        ndf_penalty: float,
        exact: List[bool],
    ) -> None:
        """Fill ``out`` with this term's lower bound per block element."""
        table = self._table
        if table is not None:
            if self._lut_np is not None and fastpath.gather_bounds(
                self._lut_np, column, out, exact
            ):
                return
            for i, code in enumerate(column):
                if code is None:
                    out[i] = ndf_penalty
                else:
                    exact[i] = False
                    out[i] = table[code]
            return
        memo = self._memo
        quantizer = self.quantizer
        value = self.query_value
        for i, code in enumerate(column):
            if code is None:
                out[i] = ndf_penalty
                continue
            exact[i] = False
            bound = memo.get(code)
            if bound is None:
                bound = quantizer.lower_bound(value, code)
                memo[code] = bound
            out[i] = bound

    def bound_segment(self, segment, count: int, ndf_penalty: float):
        """``(bounds, defined)`` arrays for one decoded numeric segment.

        Eager tables gather array-wide; wide code spaces dedupe the block's
        codes first (``np.unique``) and bound each distinct code once via
        the shared memo — both paths fill every entry with the exact double
        the scalar ``bound_column`` would have produced.
        """
        np = fastpath._np
        defined = segment.defined
        table = self._table
        if table is not None:
            if self._lut_np is None:
                self._lut_np = fastpath.lut_array(table)
            out = fastpath.gather_bounds_array(
                self._lut_np, segment.codes, defined, ndf_penalty
            )
            return out, defined
        out = np.full(count, ndf_penalty, dtype=np.float64)
        if defined.any():
            memo = self._memo
            quantizer = self.quantizer
            value = self.query_value
            uniq, inverse = np.unique(segment.codes[defined], return_inverse=True)
            uniq_bounds = np.empty(len(uniq), dtype=np.float64)
            for j, code in enumerate(uniq.tolist()):
                bound = memo.get(code)
                if bound is None:
                    bound = quantizer.lower_bound(value, code)
                    memo[code] = bound
                uniq_bounds[j] = bound
            out[defined] = uniq_bounds[inverse]
        return out, defined

    @property
    def table_codes(self) -> int:
        """LUT entries materialised so far (observability)."""
        return len(self._table) if self._table is not None else len(self._memo)


class KernelCache:
    """Shared compiled-term artifact: one entry per ``(attribute, value)``.

    One instance spans whatever should share compilation work — a batch of
    queries, all shards of a parallel run, or (in the serving daemon) every
    request against one index snapshot — so two queries naming the same
    term get the *same* compiled object (and the block evaluator's column
    cache can key on object identity).  ``hits``/``misses`` count term
    lookups so long-lived caches can report reuse.
    """

    __slots__ = ("_terms", "hits", "misses")

    def __init__(self) -> None:
        self._terms: Dict[Tuple[int, object], object] = {}
        self.hits = 0
        self.misses = 0

    def text_term(self, attr_id: int, query_string: str, n: int) -> CompiledTextTerm:
        """The shared compiled text term for ``attr = query_string``."""
        key = (attr_id, query_string)
        term = self._terms.get(key)
        if term is None:
            self.misses += 1
            term = CompiledTextTerm(query_string, n)
            self._terms[key] = term
        else:
            self.hits += 1
        return term

    def numeric_term(
        self, attr_id: int, quantizer: Optional[NumericQuantizer], value: float
    ) -> CompiledNumericTerm:
        """The shared compiled numeric term for ``attr = value``."""
        key = (attr_id, value)
        term = self._terms.get(key)
        if term is None:
            self.misses += 1
            term = CompiledNumericTerm(quantizer, value)
            self._terms[key] = term
        else:
            self.hits += 1
        return term

    def __len__(self) -> int:
        return len(self._terms)


class QueryKernel:
    """One query compiled for block-at-a-time filtering.

    Holds the compiled per-term tables, the payload slot of each term
    (mirroring :class:`~repro.core.engine.BoundEvaluator`'s position map),
    the pre-resolved importance weights, and the metric — everything the
    per-block loop needs without touching the query again.

    :meth:`evaluate_block` returns the same ``(estimated, exact)`` the
    scalar path derives per tuple: bounds from the tables (bit-identical
    entries), weights from :meth:`DistanceFunction.weight` (same cached
    floats), combined through the same ``metric.combine``.
    """

    __slots__ = ("query", "terms", "schemes", "slots", "weights", "metric", "ndf_penalty")

    def __init__(
        self,
        query: Query,
        terms: Sequence[object],
        schemes: Sequence[object],
        slots: Sequence[int],
        weights: Sequence[float],
        metric,
        ndf_penalty: float,
    ) -> None:
        self.query = query
        self.terms = list(terms)
        self.schemes = list(schemes)
        self.slots = list(slots)
        self.weights = list(weights)
        self.metric = metric
        self.ndf_penalty = ndf_penalty

    @classmethod
    def compile(
        cls,
        index,
        query: Query,
        distance: DistanceFunction,
        position: Optional[dict] = None,
        cache: Optional[KernelCache] = None,
    ) -> "QueryKernel":
        """Compile *query* against *index*; see :class:`KernelCache`.

        *position* maps attribute id → payload slot (the batch/parallel
        union scan); ``None`` means payloads align 1:1 with the query's
        terms, exactly as in :class:`~repro.core.engine.BoundEvaluator`.
        """
        cache = cache if cache is not None else KernelCache()
        n = index.config.n
        terms: List[object] = []
        schemes: List[object] = []
        weights: List[float] = []
        for term in query.terms:
            attr_id = term.attr.attr_id
            if term.attr.is_text:
                terms.append(cache.text_term(attr_id, str(term.value), n))
                entry = index.entry(attr_id)
                schemes.append(entry.scheme if entry is not None else None)
            else:
                entry = index.entry(attr_id)
                quantizer = entry.quantizer if entry is not None else None
                terms.append(
                    cache.numeric_term(attr_id, quantizer, float(term.value))
                )
                schemes.append(None)
            weights.append(distance.weight(attr_id, query))
        if position is None:
            slots = list(range(len(query.terms)))
        else:
            slots = [position[term.attr.attr_id] for term in query.terms]
        return cls(
            query,
            terms,
            schemes,
            slots,
            weights,
            distance.metric,
            distance.ndf_penalty,
        )

    def evaluate_block(
        self,
        columns: Sequence[Sequence[object]],
        count: int,
        cache: Optional[dict] = None,
    ) -> Tuple[List[float], List[bool]]:
        """``(estimated, exact)`` for every element of one decoded block.

        *columns* holds one payload column per scan slot (the
        ``move_block`` output of each scanner); *cache*, when given, is a
        per-block memo keyed on compiled-term identity so batched queries
        sharing a term fill the bound column once (the block counterpart
        of the batch engine's per-tuple text-bound cache).
        """
        exact = [True] * count
        ndf_penalty = self.ndf_penalty
        bound_columns: List[List[float]] = []
        for term, scheme, slot in zip(self.terms, self.schemes, self.slots):
            column = columns[slot]
            if cache is not None:
                key = (id(term), slot)
                cached = cache.get(key)
                if cached is not None:
                    # Reused from a sibling query: the bounds are already
                    # computed, but this query's exact flags still need the
                    # definedness scan.
                    for i in range(count):
                        if column[i] is not None:
                            exact[i] = False
                    bound_columns.append(cached)
                    continue
            out = [0.0] * count
            if isinstance(term, CompiledTextTerm):
                term.bound_column(column, scheme, out, ndf_penalty, exact)
            else:
                term.bound_column(column, out, ndf_penalty, exact)
            if cache is not None:
                cache[(id(term), slot)] = out
            bound_columns.append(out)

        combine = self.metric.combine
        weights = self.weights
        estimates = [0.0] * count
        if len(bound_columns) == 1:
            w0 = weights[0]
            col0 = bound_columns[0]
            for i in range(count):
                estimates[i] = combine([w0 * col0[i]])
        else:
            pairs = list(zip(weights, bound_columns))
            for i in range(count):
                estimates[i] = combine([w * col[i] for w, col in pairs])
        return estimates, exact

    def _bound_segment(self, term, scheme, segment, count: int):
        """``(bounds, defined)`` arrays for one term over one segment.

        Columnar segments route to the term's vectorised ``bound_segment``;
        a :class:`~repro.core.segment.ColumnSegment` (the fallback decode,
        including the engine's null scanner) runs the scalar
        ``bound_column`` and wraps its output — so mixed-shape blocks stay
        bit-identical to the scalar walk term by term.
        """
        np = fastpath._np
        ndf_penalty = self.ndf_penalty
        kind = segment.kind
        if kind == "text" and isinstance(term, CompiledTextTerm):
            return term.bound_segment(segment, scheme, count, ndf_penalty)
        if kind == "numeric" and isinstance(term, CompiledNumericTerm):
            return term.bound_segment(segment, count, ndf_penalty)
        column = segment.column()
        out = [0.0] * count
        exact = [True] * count
        if isinstance(term, CompiledTextTerm):
            term.bound_column(column, scheme, out, ndf_penalty, exact)
        else:
            term.bound_column(column, out, ndf_penalty, exact)
        defined = np.asarray([not flag for flag in exact], dtype=bool)
        return np.asarray(out, dtype=np.float64), defined

    def evaluate_segments(
        self,
        segments: Sequence[object],
        count: int,
        cache: Optional[dict] = None,
    ) -> Tuple[List[float], List[bool]]:
        """``(estimated, exact)`` for one block of decoded segments.

        The v3 counterpart of :meth:`evaluate_block`: *segments* holds one
        :mod:`repro.core.segment` object per scan slot (the
        ``decode_segment`` output of each scanner).  Per-term bounds come
        from the vectorised ``bound_segment`` routines and the combine
        collapses to :func:`repro.core.fastpath.combine_columns` for the
        built-in metrics — both proven bit-identical to the scalar chain —
        while custom metrics fall back to the per-element ``combine``.
        Without numpy the segments are rebuilt into legacy columns and
        handed to :meth:`evaluate_block` unchanged.
        """
        if fastpath._np is None:
            columns = [segment.column() for segment in segments]
            return self.evaluate_block(columns, count, cache)
        np = fastpath._np
        any_defined = np.zeros(count, dtype=bool)
        bound_columns = []
        for term, scheme, slot in zip(self.terms, self.schemes, self.slots):
            pair = None
            if cache is not None:
                pair = cache.get((id(term), slot))
            if pair is None:
                pair = self._bound_segment(term, scheme, segments[slot], count)
                if cache is not None:
                    cache[(id(term), slot)] = pair
            out, defined = pair
            any_defined = any_defined | defined
            bound_columns.append(out)
        estimates = fastpath.combine_columns(
            _metric_kind(self.metric), self.weights, bound_columns, count
        )
        exact = [not flag for flag in any_defined.tolist()]
        if estimates is not None:
            return estimates.tolist(), exact
        combine = self.metric.combine
        pairs = [
            (weight, column.tolist())
            for weight, column in zip(self.weights, bound_columns)
        ]
        scalar_estimates = [
            combine([weight * column[i] for weight, column in pairs])
            for i in range(count)
        ]
        return scalar_estimates, exact

    @property
    def table_entries(self) -> int:
        """Total LUT entries materialised across this kernel's terms."""
        total = 0
        for term in self.terms:
            if isinstance(term, CompiledTextTerm):
                total += term.table_lengths
            else:
                total += term.table_codes
        return total
