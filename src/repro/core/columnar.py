"""In-memory columnar acceleration of the iVA-file filter.

The paper's 2009 design streams approximation vectors from disk; on modern
hardware the whole approximation file fits in RAM, and the bit-twiddling
of Eq. 3 vectorises.  :class:`InMemoryIVAEngine` materialises each
attribute's vectors into numpy arrays once (signatures grouped by their
``(l, t)`` geometry, codes as integer columns), evaluates a query's lower
bounds for *all* tuples with array ops, and then refines **best-first**:
candidates sorted by estimated distance, stopping as soon as the next
estimate cannot beat the pool — the classic VA-file near-optimal access
order, which the interleaved disk plan cannot use because it must follow
tid order.

Answers are identical to :class:`~repro.core.engine.IVAEngine` (same
bounds, same pool rule); the access *count* is never larger, because
best-first refinement is optimal for a fixed set of lower bounds.

The accelerator snapshots the index at construction; call :meth:`refresh`
after updates.  Without numpy the class still works (scalar arithmetic),
just without the speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.engine import QueryResult, SearchReport
from repro.core.iva_file import IVAFile
from repro.core.pool import ResultPool
from repro.core.signature import QueryStringEncoder
from repro.core.tuple_list import DELETED_PTR
from repro.errors import QueryError
from repro.metrics.distance import DistanceFunction, L1Metric, L2Metric, LInfMetric
from repro.query import Query
from repro.storage.table import SparseWideTable

try:  # pragma: no cover - both branches covered via behaviour tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


@dataclass
class _TextBucket:
    """Signatures sharing one (l_bits, t) geometry, as arrays."""

    positions: List[int] = field(default_factory=list)
    lengths: List[int] = field(default_factory=list)
    bits: List[int] = field(default_factory=list)
    words: object = None  # numpy uint64 matrix (m, W) when frozen
    positions_arr: object = None
    lengths_arr: object = None

    def freeze(self, l_bits: int) -> None:
        """Convert the accumulated lists into numpy arrays."""
        if _np is None:
            return
        word_count = (l_bits + 63) // 64
        matrix = _np.zeros((len(self.bits), word_count), dtype=_np.uint64)
        for row, value in enumerate(self.bits):
            for w in range(word_count):
                matrix[row, w] = (value >> (64 * w)) & 0xFFFFFFFFFFFFFFFF
        self.words = matrix
        self.positions_arr = _np.asarray(self.positions, dtype=_np.int64)
        self.lengths_arr = _np.asarray(self.lengths, dtype=_np.float64)


@dataclass
class _TextColumn:
    buckets: Dict[Tuple[int, int], _TextBucket] = field(default_factory=dict)


@dataclass
class _NumericColumn:
    codes: List[int] = field(default_factory=list)  # -1 = ndf
    codes_arr: object = None

    def freeze(self) -> None:
        """Convert the accumulated lists into numpy arrays."""
        if _np is not None:
            self.codes_arr = _np.asarray(self.codes, dtype=_np.int64)


class InMemoryIVAEngine:
    """Vectorized filter + best-first refine over a memory-resident index."""

    name = "iVA-mem"

    def __init__(
        self,
        table: SparseWideTable,
        index: IVAFile,
        distance: Optional[DistanceFunction] = None,
    ) -> None:
        self.table = table
        self.index = index
        self.distance = distance or DistanceFunction()
        self._tids: List[int] = []
        self._deleted: List[bool] = []
        self._text: Dict[int, _TextColumn] = {}
        self._numeric: Dict[int, _NumericColumn] = {}
        self.refresh()

    # ------------------------------------------------------------- snapshot

    def refresh(self) -> None:
        """Re-materialise the columnar snapshot from the index."""
        self._tids = []
        self._deleted = []
        for tid, ptr in self.index._tuples.scan():
            self._tids.append(tid)
            self._deleted.append(ptr == DELETED_PTR)
        self._text = {}
        self._numeric = {}
        for entry in self.index.entries():
            attr_id = entry.attr.attr_id
            scanner = self.index.make_scanner(attr_id)
            if entry.attr.is_text:
                column = _TextColumn()
                for position, tid in enumerate(self._tids):
                    payload = scanner.move_to(tid)
                    if payload is None:
                        continue
                    for signature in payload:
                        key = (signature.l_bits, signature.t)
                        bucket = column.buckets.setdefault(key, _TextBucket())
                        bucket.positions.append(position)
                        bucket.lengths.append(signature.length)
                        bucket.bits.append(signature.bits)
                for (l_bits, _), bucket in column.buckets.items():
                    bucket.freeze(l_bits)
                self._text[attr_id] = column
            else:
                column = _NumericColumn()
                for tid in self._tids:
                    payload = scanner.move_to(tid)
                    column.codes.append(-1 if payload is None else payload)
                column.freeze()
                self._numeric[attr_id] = column

    # -------------------------------------------------------------- bounds

    def _text_bounds(self, attr_id: int, query_string: str, penalty: float):
        """Per-position lower bound for one text term (penalty where ndf)."""
        n = self.index.config.n
        encoder = QueryStringEncoder(query_string, n)
        count = len(self._tids)
        column = self._text.get(attr_id)
        if column is None:
            return self._full(penalty, count), self._full(False, count, bool_=True)
        if _np is None:
            return self._text_bounds_scalar(column, encoder, penalty, count, n)
        bounds = _np.full(count, _np.inf)
        qlen = float(encoder.query_length)
        for (l_bits, t), bucket in column.buckets.items():
            if not bucket.positions:
                continue
            words = bucket.words
            hits = _np.zeros(len(bucket.positions))
            for mask, gram_count in encoder._masks(l_bits, t):
                mask_words = _np.zeros(words.shape[1], dtype=_np.uint64)
                for w in range(words.shape[1]):
                    mask_words[w] = (mask >> (64 * w)) & 0xFFFFFFFFFFFFFFFF
                ok = _np.all((words & mask_words) == mask_words, axis=1)
                hits += gram_count * ok
            est = (_np.maximum(qlen, bucket.lengths_arr) - hits - 1) / n + 1
            est = _np.clip(est, 0.0, None)
            _np.minimum.at(bounds, bucket.positions_arr, est)
        defined = ~_np.isinf(bounds)
        bounds = _np.where(defined, bounds, penalty)
        return bounds, defined

    def _text_bounds_scalar(self, column, encoder, penalty, count, n):
        bounds = [float("inf")] * count
        for (l_bits, t), bucket in column.buckets.items():
            for position, length, bits in zip(
                bucket.positions, bucket.lengths, bucket.bits
            ):
                from repro.core.signature import Signature

                est = encoder.lower_bound(
                    Signature(length=length, l_bits=l_bits, t=t, bits=bits)
                )
                if est < bounds[position]:
                    bounds[position] = est
        defined = [b != float("inf") for b in bounds]
        bounds = [b if d else penalty for b, d in zip(bounds, defined)]
        return bounds, defined

    def _numeric_bounds(self, attr_id: int, query_value: float, penalty: float):
        count = len(self._tids)
        column = self._numeric.get(attr_id)
        entry = self.index.entry(attr_id)
        if column is None or entry is None:
            return self._full(penalty, count), self._full(False, count, bool_=True)
        quantizer = entry.quantizer
        if _np is None:
            bounds = []
            defined = []
            for code in column.codes:
                if code < 0:
                    bounds.append(penalty)
                    defined.append(False)
                else:
                    bounds.append(quantizer.lower_bound(query_value, code))
                    defined.append(True)
            return bounds, defined
        codes = column.codes_arr
        defined = codes >= 0
        safe = _np.where(defined, codes, 0)
        if quantizer.hi == quantizer.lo:
            lo = _np.full(len(codes), quantizer.lo)
            hi = _np.full(len(codes), quantizer.hi)
        else:
            width = quantizer.slice_width
            lo = quantizer.lo + safe * width
            hi = lo + width
        open_low = safe == 0
        open_high = safe == quantizer.num_slices - 1
        below = _np.where(open_low, -_np.inf, lo)
        above = _np.where(open_high, _np.inf, hi)
        inside = (query_value >= below) & (query_value <= above)
        bound = _np.where(
            inside,
            0.0,
            _np.where(query_value < lo, lo - query_value, query_value - above),
        )
        bound = _np.clip(bound, 0.0, None)
        return _np.where(defined, bound, penalty), defined

    @staticmethod
    def _full(value, count, bool_: bool = False):
        if _np is not None:
            return _np.full(count, value, dtype=bool if bool_ else float)
        return [value] * count

    # --------------------------------------------------------------- search

    def prepare_query(self, query: Union[Query, Mapping[str, object]]) -> Query:
        """Coerce a mapping into a validated :class:`Query`."""
        if isinstance(query, Query):
            return query
        if isinstance(query, Mapping):
            return Query.from_dict(self.table.catalog, query)
        raise QueryError(f"cannot interpret {query!r} as a query")

    def search(
        self,
        query: Union[Query, Mapping[str, object]],
        k: int = 10,
        distance: Optional[DistanceFunction] = None,
    ) -> SearchReport:
        """Run a top-k structured similarity query; returns a report."""
        query = self.prepare_query(query)
        dist = distance or self.distance
        report = SearchReport()
        disk = self.table.disk
        wall_start = time.perf_counter()
        penalty = dist.ndf_penalty

        per_term_bounds = []
        per_term_defined = []
        for term in query.terms:
            if term.attr.is_text:
                bounds, defined = self._text_bounds(
                    term.attr.attr_id, str(term.value), penalty
                )
            else:
                bounds, defined = self._numeric_bounds(
                    term.attr.attr_id, float(term.value), penalty
                )
            per_term_bounds.append(bounds)
            per_term_defined.append(defined)

        count = len(self._tids)
        estimates = self._combine(query, dist, per_term_bounds, count)
        if _np is not None:
            any_defined = _np.zeros(count, dtype=bool)
            for defined in per_term_defined:
                any_defined |= _np.asarray(defined, dtype=bool)
            order = _np.argsort(estimates, kind="stable")
        else:
            any_defined = [any(d[i] for d in per_term_defined) for i in range(count)]
            order = sorted(range(count), key=lambda i: estimates[i])

        report.filter_wall_s = time.perf_counter() - wall_start
        pool = ResultPool(k)
        refine_wall_start = time.perf_counter()
        refine_io_start = disk.stats.io_time_ms
        for position in order:
            position = int(position)
            if self._deleted[position]:
                continue
            report.tuples_scanned += 1
            estimate = float(estimates[position])
            tid = self._tids[position]
            if not any_defined[position]:
                pool.insert(tid, estimate)  # exact: all queried attrs ndf
                report.exact_shortcuts += 1
                continue
            if pool.is_full() and not pool.is_candidate(estimate):
                # Best-first: every later estimate is at least this large,
                # but all-ndf tuples after this point still belong in the
                # pool race, so only stop refining, keep scanning exacts.
                continue
            record = self.table.read(tid)
            pool.insert(tid, dist.actual(query, record))
            report.table_accesses += 1
        report.refine_io_ms = disk.stats.io_time_ms - refine_io_start
        report.refine_wall_s = time.perf_counter() - refine_wall_start
        report.results = [
            QueryResult(tid=e.tid, distance=e.distance) for e in pool.results()
        ]
        return report

    def _combine(self, query, dist, per_term_bounds, count):
        weights = [dist.weight(t.attr.attr_id, query) for t in query.terms]
        metric = dist.metric
        if _np is not None:
            stacked = _np.vstack(
                [_np.asarray(b, dtype=float) * w for b, w in zip(per_term_bounds, weights)]
            )
            if isinstance(metric, L1Metric):
                return stacked.sum(axis=0)
            if isinstance(metric, L2Metric):
                return _np.sqrt((stacked ** 2).sum(axis=0))
            if isinstance(metric, LInfMetric):
                return stacked.max(axis=0)
            return _np.asarray(
                [
                    metric.combine([stacked[t, i] for t in range(len(weights))])
                    for i in range(count)
                ]
            )
        out = []
        for i in range(count):
            out.append(
                metric.combine(
                    [b[i] * w for b, w in zip(per_term_bounds, weights)]
                )
            )
        return out
