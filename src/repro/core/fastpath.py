"""Optional numpy acceleration for bulk encoding and block filtering.

The repro environment note is right that pure Python struggles with
scan-efficiency workloads; bulk *index builds* are the hottest loop we can
vectorise without changing any on-disk byte.  When numpy is importable,
:func:`encode_numeric_batch` quantises whole columns at once and
:func:`pack_codes` emits the little-endian code stream in one call;
otherwise both fall back to the scalar path.  Tests pin byte-for-byte
equality between the two paths.

The block filter kernel (:mod:`repro.core.kernel`) plugs in through
:func:`lut_array` / :func:`gather_bounds`: a numeric term's eager
``code → lower_bound`` table becomes a float64 array and a fully-defined
decoded column is bounded with one vectorised gather.  The array holds the
exact doubles of the scalar table, so gathered bounds stay bit-identical;
columns with ndf gaps fall back to the scalar loop.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Sequence

from repro.core.numeric import NumericQuantizer

try:  # pragma: no cover - exercised implicitly by both branches' tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

logger = logging.getLogger(__name__)

#: Below this many values the numpy round-trip costs more than it saves.
_BATCH_THRESHOLD = 64

_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}

#: One-shot flag so the wide-code scalar fallback announces itself once
#: per process instead of once per column.
_wide_code_logged = False


def numpy_available() -> bool:
    """True when the numpy fast path is active."""
    return _np is not None


def encode_numeric_batch(
    quantizer: NumericQuantizer, values: Sequence[float]
) -> List[int]:
    """Slice codes for *values*, identical to ``quantizer.encode`` per value."""
    # Wide codes (> 4 bytes: up to 2^64 slices) overflow int64 and exceed
    # float64 integer precision; the scalar path handles them with Python
    # bigints.
    if quantizer.vector_bytes > 4:
        global _wide_code_logged
        if not _wide_code_logged:
            _wide_code_logged = True
            logger.debug(
                "encode_numeric_batch: vector_bytes=%d exceeds the 4-byte "
                "vectorisation boundary (codes would lose float64 integer "
                "precision); falling back to scalar encode",
                quantizer.vector_bytes,
            )
        return [quantizer.encode(v) for v in values]
    if _np is None or len(values) < _BATCH_THRESHOLD:
        return [quantizer.encode(v) for v in values]
    arr = _np.asarray(values, dtype=_np.float64)
    top = quantizer.num_slices - 1
    if quantizer.hi == quantizer.lo:
        codes = _np.where(arr <= quantizer.lo, 0, top)
    else:
        width = quantizer.slice_width
        codes = ((arr - quantizer.lo) / width).astype(_np.int64)
        codes = _np.clip(codes, 0, top)
        codes = _np.where(arr <= quantizer.lo, 0, codes)
        codes = _np.where(arr >= quantizer.hi, top, codes)
    return codes.astype(_np.int64).tolist()


def pack_codes(codes: Sequence[int], vector_bytes: int) -> bytes:
    """Little-endian concatenation of fixed-width codes."""
    if _np is not None and len(codes) >= _BATCH_THRESHOLD and vector_bytes in _DTYPES:
        return _np.asarray(codes, dtype=_DTYPES[vector_bytes]).tobytes()
    out = bytearray()
    for code in codes:
        out += int(code).to_bytes(vector_bytes, "little")
    return bytes(out)


def encode_numeric_column(
    quantizer: NumericQuantizer, values: Sequence[float]
) -> bytes:
    """Codes for a whole column as the serialized byte stream."""
    return pack_codes(encode_numeric_batch(quantizer, values), quantizer.vector_bytes)


def lut_array(table: Sequence[float]):
    """A float64 numpy mirror of an eager lookup table, or None.

    Compiled once per numeric query term; ``float64`` round-trips every
    Python float exactly, so gathering from the array yields the same
    bounds as indexing the scalar table.
    """
    if _np is None:
        return None
    return _np.asarray(table, dtype=_np.float64)


def gather_bounds(lut, column: Sequence[object], out: List[float], exact: List[bool]) -> bool:
    """Vectorised ``out[i] = lut[column[i]]`` for a fully-defined column.

    Returns False — leaving ``out``/``exact`` untouched — when numpy is
    unavailable, the column is too small to pay for the round-trip, or any
    element is ndf (``None``); the caller then runs its scalar loop.  On
    success every element was defined, so all ``exact`` flags clear.
    """
    if lut is None or len(column) < _BATCH_THRESHOLD or None in column:
        return False
    codes = _np.asarray(column, dtype=_np.intp)
    out[:] = lut[codes].tolist()
    exact[:] = [False] * len(column)
    return True


def dtype_for_width(vector_bytes: int) -> Optional[str]:
    """The little-endian unsigned dtype code for a vector width, or None.

    Odd widths (3, 5, 6, 7 bytes — legal quantizer geometries) have no
    numpy scalar type; segment decoders fall back to the scalar walk for
    them, which keeps correctness while the common widths vectorise.
    """
    return _DTYPES.get(vector_bytes)


def gather_bounds_array(lut, codes, defined, ndf_penalty: float):
    """Array-wide LUT gather over a whole decoded segment.

    The v3 counterpart of :func:`gather_bounds`: *codes*/*defined* are the
    parallel arrays of a :class:`~repro.core.segment.NumericSegment` and
    the result is a float64 bound column with ``ndf_penalty`` at every
    undefined slot.  ``lut`` holds the scalar table's exact doubles, so
    each gathered bound is bit-identical to ``table[code]``.  Returns
    ``None`` when numpy is unavailable.
    """
    if _np is None or lut is None:
        return None
    safe = _np.where(defined, codes, 0)
    out = lut[safe]
    out[~defined] = ndf_penalty
    return out


def text_min_scatter(count: int, slots, values, defined, ndf_penalty: float):
    """Per-slot minimum of a flat text-bound run, as a float64 column.

    *slots* is a non-decreasing index array and *values* the matching
    per-signature bounds; the result keeps each slot's minimum bound (the
    scalar walk's multi-string rule) and ``ndf_penalty`` where no
    signature landed.  Minimum over the same multiset of exact doubles is
    order-independent, so the column is bit-identical to the scalar
    ``bound_column``.  Returns ``None`` when numpy is unavailable.
    """
    if _np is None:
        return None
    out = _np.full(count, ndf_penalty, dtype=_np.float64)
    if len(values):
        best = _np.full(count, _np.inf, dtype=_np.float64)
        vals = _np.asarray(values, dtype=_np.float64)
        _np.minimum.at(best, slots, vals)
        out[defined] = best[defined]
    return out


def combine_columns(metric_kind: Optional[str], weights, columns, count: int):
    """Vectorised distance combine over per-term bound columns.

    *metric_kind* names one of the built-in metrics (``"L1"``, ``"L2"``,
    ``"Linf"``) whose combine rules have exact array equivalents:

    * L1 — ``sum()`` over a list is the same left-to-right float addition
      chain as repeated ``+=`` on a zero accumulator;
    * L2 — squares accumulate in term order (``d*d``, not ``**2``) and
      ``np.sqrt`` is IEEE correctly-rounded like ``math.sqrt``;
    * Linf — a pairwise ``maximum`` chain computes the same maximum.

    Any other metric returns ``None`` and the caller falls back to the
    scalar per-element ``combine``.  Returns ``None`` when numpy is
    unavailable.
    """
    if _np is None or metric_kind is None:
        return None
    if metric_kind == "L1":
        acc = _np.zeros(count, dtype=_np.float64)
        for weight, column in zip(weights, columns):
            acc += weight * column
        return acc
    if metric_kind == "L2":
        acc = _np.zeros(count, dtype=_np.float64)
        for weight, column in zip(weights, columns):
            weighted = weight * column
            acc += weighted * weighted
        return _np.sqrt(acc)
    if metric_kind == "Linf":
        acc = weights[0] * columns[0]
        for weight, column in zip(weights[1:], columns[1:]):
            acc = _np.maximum(acc, weight * column)
        return acc
    return None
