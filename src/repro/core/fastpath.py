"""Optional numpy acceleration for bulk encoding and block filtering.

The repro environment note is right that pure Python struggles with
scan-efficiency workloads; bulk *index builds* are the hottest loop we can
vectorise without changing any on-disk byte.  When numpy is importable,
:func:`encode_numeric_batch` quantises whole columns at once and
:func:`pack_codes` emits the little-endian code stream in one call;
otherwise both fall back to the scalar path.  Tests pin byte-for-byte
equality between the two paths.

The block filter kernel (:mod:`repro.core.kernel`) plugs in through
:func:`lut_array` / :func:`gather_bounds`: a numeric term's eager
``code → lower_bound`` table becomes a float64 array and a fully-defined
decoded column is bounded with one vectorised gather.  The array holds the
exact doubles of the scalar table, so gathered bounds stay bit-identical;
columns with ndf gaps fall back to the scalar loop.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.numeric import NumericQuantizer

try:  # pragma: no cover - exercised implicitly by both branches' tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Below this many values the numpy round-trip costs more than it saves.
_BATCH_THRESHOLD = 64

_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}


def numpy_available() -> bool:
    """True when the numpy fast path is active."""
    return _np is not None


def encode_numeric_batch(
    quantizer: NumericQuantizer, values: Sequence[float]
) -> List[int]:
    """Slice codes for *values*, identical to ``quantizer.encode`` per value."""
    # Wide codes (8-byte: 2^64 slices) overflow int64 and exceed float64
    # integer precision; the scalar path handles them with Python bigints.
    if _np is None or len(values) < _BATCH_THRESHOLD or quantizer.vector_bytes > 4:
        return [quantizer.encode(v) for v in values]
    arr = _np.asarray(values, dtype=_np.float64)
    top = quantizer.num_slices - 1
    if quantizer.hi == quantizer.lo:
        codes = _np.where(arr <= quantizer.lo, 0, top)
    else:
        width = quantizer.slice_width
        codes = ((arr - quantizer.lo) / width).astype(_np.int64)
        codes = _np.clip(codes, 0, top)
        codes = _np.where(arr <= quantizer.lo, 0, codes)
        codes = _np.where(arr >= quantizer.hi, top, codes)
    return codes.astype(_np.int64).tolist()


def pack_codes(codes: Sequence[int], vector_bytes: int) -> bytes:
    """Little-endian concatenation of fixed-width codes."""
    if _np is not None and len(codes) >= _BATCH_THRESHOLD and vector_bytes in _DTYPES:
        return _np.asarray(codes, dtype=_DTYPES[vector_bytes]).tobytes()
    out = bytearray()
    for code in codes:
        out += int(code).to_bytes(vector_bytes, "little")
    return bytes(out)


def encode_numeric_column(
    quantizer: NumericQuantizer, values: Sequence[float]
) -> bytes:
    """Codes for a whole column as the serialized byte stream."""
    return pack_codes(encode_numeric_batch(quantizer, values), quantizer.vector_bytes)


def lut_array(table: Sequence[float]):
    """A float64 numpy mirror of an eager lookup table, or None.

    Compiled once per numeric query term; ``float64`` round-trips every
    Python float exactly, so gathering from the array yields the same
    bounds as indexing the scalar table.
    """
    if _np is None:
        return None
    return _np.asarray(table, dtype=_np.float64)


def gather_bounds(lut, column: Sequence[object], out: List[float], exact: List[bool]) -> bool:
    """Vectorised ``out[i] = lut[column[i]]`` for a fully-defined column.

    Returns False — leaving ``out``/``exact`` untouched — when numpy is
    unavailable, the column is too small to pay for the round-trip, or any
    element is ndf (``None``); the caller then runs its scalar loop.  On
    success every element was defined, so all ``exact`` flags clear.
    """
    if lut is None or len(column) < _BATCH_THRESHOLD or None in column:
        return False
    codes = _np.asarray(column, dtype=_np.intp)
    out[:] = lut[codes].tolist()
    exact[:] = [False] * len(column)
    return True
