"""Structured similarity queries.

A query names values on a few attributes ("Type: Digital Camera,
Company: Canon, Price: 200" — paper Fig. 2); the system returns the top-k
tuples under a monotone similarity metric.  Text terms carry a single query
string; numeric terms carry a number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple, Union

from repro.errors import QueryError
from repro.model.schema import AttributeDef
from repro.storage.catalog import Catalog


@dataclass(frozen=True)
class QueryTerm:
    """One defined value of a query: an attribute plus the expected value."""

    attr: AttributeDef
    value: Union[str, float]

    def __post_init__(self) -> None:
        if self.attr.is_text and not isinstance(self.value, str):
            raise QueryError(
                f"attribute {self.attr.name!r} is text; query value "
                f"{self.value!r} is not a string"
            )
        if self.attr.is_numeric and not isinstance(self.value, (int, float)):
            raise QueryError(
                f"attribute {self.attr.name!r} is numeric; query value "
                f"{self.value!r} is not a number"
            )
        if self.attr.is_text and not self.value:
            raise QueryError("query strings must be non-empty")
        if self.attr.is_numeric:
            object.__setattr__(self, "value", float(self.value))


@dataclass(frozen=True)
class Query:
    """An immutable structured query: terms sorted by attribute id."""

    terms: Tuple[QueryTerm, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("a query must define at least one value")
        ids = [t.attr.attr_id for t in self.terms]
        if len(set(ids)) != len(ids):
            raise QueryError("a query may define each attribute at most once")
        object.__setattr__(
            self, "terms", tuple(sorted(self.terms, key=lambda t: t.attr.attr_id))
        )

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    @classmethod
    def from_dict(cls, catalog: Catalog, values: Mapping[str, Union[str, float]]) -> "Query":
        """Build a query from ``{attribute name: value}`` against a catalog."""
        terms = []
        for name, value in values.items():
            attr = catalog.get(name)
            if attr is None:
                raise QueryError(f"query names unknown attribute {name!r}")
            terms.append(QueryTerm(attr=attr, value=value))
        return cls(terms=tuple(terms))

    def attribute_ids(self) -> Tuple[int, ...]:
        """The queried attribute ids, ascending."""
        return tuple(t.attr.attr_id for t in self.terms)

    def describe(self) -> str:
        """Human-readable rendering."""
        parts = [f"{t.attr.name}={t.value!r}" for t in self.terms]
        return ", ".join(parts)
