"""The storage seam: one backend protocol, two implementations.

Everything above the storage layer — the wide table, the iVA-file, the
engines, fsck, snapshots, both distributed layers — talks to a *backend*
through the interface below.  Two implementations ship:

* :class:`~repro.storage.disk.SimulatedDisk` — the in-memory, page-grained
  store with the paper's seek/transfer cost model (Sec. V runs on it);
* :class:`~repro.storage.hostdisk.HostDisk` — the same interface over a
  real directory, for running the library as an embedded database.

Callers outside :mod:`repro.storage` must not import either concrete class:
they accept a :class:`StorageBackend` and construct instances through
:func:`simulated_backend` / :func:`host_backend`.  That keeps the choice of
substrate a one-line decision at the composition root (CLI, bench harness,
distributed system constructors) instead of a per-module branch.

The protocol is deliberately the *union* of what the upper layers use —
including the I/O-attribution surface (:meth:`StorageBackend.metered`,
:meth:`StorageBackend.io_channel`) the parallel executor depends on, which
the host backend implements as cheap no-ops (real I/O has no modeled cost
to attribute).
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    ContextManager,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.storage.cache import LRUCache
from repro.storage.disk import DiskParameters, DiskStats, IoMeter


@runtime_checkable
class StorageBackend(Protocol):
    """What every storage substrate must provide.

    Structural (``Protocol``) rather than nominal so the existing concrete
    classes — and any test double with the same surface — satisfy it
    without inheriting from anything.
    """

    #: Cost-model / geometry parameters (host backends keep the defaults;
    #: their modeled time stays zero).
    params: DiskParameters
    #: Logical I/O counters (calls, bytes, modeled milliseconds).
    stats: DiskStats
    #: Page cache (zero-capacity on backends that delegate caching to the OS).
    cache: LRUCache
    #: Optional :class:`repro.obs.trace.Tracer` for per-read spans.
    tracer: Optional[object]

    # ------------------------------------------------------------- files
    def create(self, name: str, *, overwrite: bool = False) -> None:
        """Create an empty file (fails if present unless *overwrite*)."""
        ...

    def delete(self, name: str) -> None:
        """Remove a file."""
        ...

    def exists(self, name: str) -> bool:
        """True if the file exists."""
        ...

    def size(self, name: str) -> int:
        """Current file size in bytes."""
        ...

    def list_files(self) -> Tuple[str, ...]:
        """All file names, sorted."""
        ...

    def total_bytes(self) -> int:
        """Total stored bytes across all files."""
        ...

    # --------------------------------------------------------------- I/O
    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read *length* bytes at *offset*."""
        ...

    def write(self, name: str, offset: int, payload: bytes) -> None:
        """Write bytes at an offset (may extend the file)."""
        ...

    def append(self, name: str, payload: bytes) -> int:
        """Append bytes; returns the offset written at."""
        ...

    def truncate(self, name: str, size: int) -> None:
        """Shrink the file to *size* bytes."""
        ...

    def rename(self, old: str, new: str) -> None:
        """Rename a file, replacing the target if present."""
        ...

    def sync(self, name: str) -> None:
        """Flush a file to stable storage (``fsync`` on real backends)."""
        ...

    # ------------------------------------------------------- cache/stats
    def warm_file(self, name: str) -> None:
        """Pull a file into the page cache (no-op where the OS caches)."""
        ...

    def drop_cache(self) -> None:
        """Empty the page cache."""
        ...

    def reset_stats(self) -> None:
        """Zero every I/O counter."""
        ...

    # -------------------------------------------------- I/O attribution
    def metered(self) -> ContextManager[IoMeter]:
        """Yield an :class:`IoMeter` accumulating this thread's charges."""
        ...

    def io_channel(self, name: str) -> ContextManager[None]:
        """Route this thread's accesses through their own head channel."""
        ...

    def accounting_scope(
        self, stats: Optional[DiskStats] = None
    ) -> ContextManager[DiskStats]:
        """Route this thread's counters into a side :class:`DiskStats`."""
        ...

    def publish_metrics(self, registry=None, label: str = "disk0") -> None:
        """Mirror the backend's counters into a metrics registry."""
        ...


def simulated_backend(params: Optional[DiskParameters] = None) -> StorageBackend:
    """A fresh cost-modeled in-memory backend (the paper's substrate)."""
    from repro.storage.disk import SimulatedDisk

    return SimulatedDisk(params)


def host_backend(root: Union[str, Path]) -> StorageBackend:
    """A backend over a real directory on the host filesystem."""
    from repro.storage.hostdisk import HostDisk

    return HostDisk(root)
