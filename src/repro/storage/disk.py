"""A simulated disk with an explicit I/O cost model.

The paper's headline numbers are I/O-bound: the iVA-file wins because it
trades a slightly larger sequential index scan for far fewer random accesses
to the table file (Sec. V-B).  To reproduce those comparisons
deterministically we run every byte of the system through this simulated
disk, which:

* stores each named file as an in-memory byte array,
* charges every access through a seek/transfer cost model at page
  granularity (default: 4 KB pages, 8 ms average seek + rotational delay,
  60 MB/s sequential transfer — a typical 2009 SATA drive),
* filters accesses through a shared LRU page cache (default 10 MB, matching
  the paper's file cache), and
* keeps full counters so experiments can report page reads, seeks, bytes
  moved, and modeled I/O milliseconds.

Sequential vs. random detection mirrors a single disk arm: a page read is
sequential when it is the page that immediately follows the previously
accessed page; anything else pays a seek.
"""

from __future__ import annotations

import logging
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import StorageError
from repro.storage.cache import LRUCache

logger = logging.getLogger(__name__)

DEFAULT_PAGE_SIZE = 4096
DEFAULT_CACHE_BYTES = 10 * 1024 * 1024


@dataclass(frozen=True)
class DiskParameters:
    """Cost model of the simulated drive."""

    page_size: int = DEFAULT_PAGE_SIZE
    #: Average positioning cost (seek + rotational latency) per random access.
    seek_ms: float = 8.0
    #: Sequential transfer rate.
    transfer_mb_per_s: float = 60.0
    #: Capacity of the shared page cache.
    cache_bytes: int = DEFAULT_CACHE_BYTES

    @property
    def transfer_ms_per_page(self) -> float:
        """Milliseconds to stream one page."""
        bytes_per_ms = self.transfer_mb_per_s * 1024 * 1024 / 1000.0
        return self.page_size / bytes_per_ms

    @property
    def cache_pages(self) -> int:
        """Cache capacity in pages."""
        return self.cache_bytes // self.page_size


@dataclass
class DiskStats:
    """Cumulative I/O counters.  Use :meth:`snapshot` / ``-`` for intervals."""

    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    cache_hits: int = 0
    io_time_ms: float = 0.0
    read_calls: int = 0
    write_calls: int = 0
    #: Zero-copy ``read_view`` calls served from an mmap (HostDisk only;
    #: the simulated disk has no mmap path, so this stays zero there).
    mmap_reads: int = 0
    per_file_reads: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "DiskStats":
        """An independent copy of the current counters."""
        return DiskStats(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            seeks=self.seeks,
            cache_hits=self.cache_hits,
            io_time_ms=self.io_time_ms,
            read_calls=self.read_calls,
            write_calls=self.write_calls,
            mmap_reads=self.mmap_reads,
            per_file_reads=dict(self.per_file_reads),
        )

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        per_file = {
            name: count - other.per_file_reads.get(name, 0)
            for name, count in self.per_file_reads.items()
        }
        per_file = {name: count for name, count in per_file.items() if count}
        return DiskStats(
            pages_read=self.pages_read - other.pages_read,
            pages_written=self.pages_written - other.pages_written,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
            seeks=self.seeks - other.seeks,
            cache_hits=self.cache_hits - other.cache_hits,
            io_time_ms=self.io_time_ms - other.io_time_ms,
            read_calls=self.read_calls - other.read_calls,
            write_calls=self.write_calls - other.write_calls,
            mmap_reads=self.mmap_reads - other.mmap_reads,
            per_file_reads=per_file,
        )


@dataclass
class IoMeter:
    """Thread-local interval accounting opened with :meth:`SimulatedDisk.metered`.

    Accumulates the modeled cost of every access *charged by the opening
    thread* while the meter is on that thread's stack — the attribution
    primitive behind per-shard I/O numbers in ``repro.parallel`` (the global
    :class:`DiskStats` cannot split concurrent charges by worker).
    """

    io_ms: float = 0.0
    pages: int = 0
    seeks: int = 0
    cache_hits: int = 0


class SimulatedDisk:
    """An in-memory file store charging accesses through a disk cost model.

    Thread safety: every access runs under one internal lock, so concurrent
    readers (``repro.parallel`` shard scans, the overlapped refiner) keep
    the counters and the LRU cache consistent.  Head positioning is tracked
    **per channel** — by default every thread shares the ``"main"`` channel
    (single disk arm, exactly the historical model); a scan that registers
    its own channel via :meth:`io_channel` gets an independent head, which
    models a multi-queue device where concurrent sequential streams do not
    charge artificial inter-stream seeks against each other.
    """

    def __init__(self, params: Optional[DiskParameters] = None) -> None:
        self.params = params or DiskParameters()
        self._files: Dict[str, bytearray] = {}
        self.cache = LRUCache(self.params.cache_pages)
        self.stats = DiskStats()
        #: Last page touched per channel, mimicking one disk arm (or one
        #: submission queue) per concurrent sequential stream.
        self._heads: Dict[str, Optional[Tuple[str, int]]] = {"main": None}
        self._lock = threading.RLock()
        self._tls = threading.local()
        #: Optional :class:`repro.obs.trace.Tracer`; when set, every read
        #: call records a ``disk.read`` span (duration = modeled I/O ms).
        #: Off by default — per-read spans are strictly opt-in.
        self.tracer = None

    # ------------------------------------------------------- I/O attribution

    def _channel(self) -> str:
        return getattr(self._tls, "channel", "main")

    def _meters(self):
        meters = getattr(self._tls, "meters", None)
        if meters is None:
            meters = []
            self._tls.meters = meters
        return meters

    @contextmanager
    def io_channel(self, name: str):
        """Route this thread's accesses through their own head channel.

        Nested use restores the previous channel on exit.  The channel's
        head state is dropped when the context closes, so short-lived shard
        channels do not accumulate.
        """
        previous = getattr(self._tls, "channel", "main")
        self._tls.channel = name
        try:
            yield
        finally:
            self._tls.channel = previous
            if name != "main":
                with self._lock:
                    self._heads.pop(name, None)

    @contextmanager
    def metered(self):
        """Yield an :class:`IoMeter` accumulating this thread's charges.

        Meters nest: every open meter on the current thread's stack sees
        each charge, so an outer whole-phase meter and an inner per-call
        meter can run simultaneously.
        """
        meter = IoMeter()
        meters = self._meters()
        meters.append(meter)
        try:
            yield meter
        finally:
            meters.remove(meter)

    def _active_stats(self) -> DiskStats:
        """The :class:`DiskStats` this thread's charges land in."""
        override = getattr(self._tls, "stats", None)
        return self.stats if override is None else override

    @contextmanager
    def accounting_scope(self, stats: Optional[DiskStats] = None):
        """Route this thread's charges into a side :class:`DiskStats`.

        Background maintenance (online compaction's clone/rebuild) opens a
        scope so its I/O does not pollute the global counters that the
        perf-regression sentinel and ``/metrics`` consumers watch.  The
        scope is thread-local: concurrent readers on other threads keep
        charging the global stats.  Scopes nest (inner override wins);
        the page cache and head state stay shared — only *accounting*
        is redirected, the modeled device is still one device.
        """
        scoped = stats if stats is not None else DiskStats()
        previous = getattr(self._tls, "stats", None)
        self._tls.stats = scoped
        try:
            yield scoped
        finally:
            self._tls.stats = previous

    # ------------------------------------------------------------------ files

    def create(self, name: str, *, overwrite: bool = False) -> None:
        """Create an empty file.  Fails if it exists unless *overwrite*."""
        if name in self._files and not overwrite:
            raise StorageError(f"file already exists: {name!r}")
        if name in self._files:
            self.cache.invalidate_prefix(name)
        self._files[name] = bytearray()

    def delete(self, name: str) -> None:
        """Tombstone the tuple with this tid."""
        if name not in self._files:
            raise StorageError(f"no such file: {name!r}")
        del self._files[name]
        self.cache.invalidate_prefix(name)

    def exists(self, name: str) -> bool:
        """True if the file exists."""
        return name in self._files

    def size(self, name: str) -> int:
        """Current number of members."""
        return len(self._file(name))

    def list_files(self) -> Tuple[str, ...]:
        """All file names, sorted."""
        return tuple(sorted(self._files))

    def total_bytes(self) -> int:
        """Total serialized footprint in bytes."""
        return sum(len(data) for data in self._files.values())

    # ------------------------------------------------------------------- I/O

    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read *length* bytes at *offset*, charging modeled I/O cost."""
        with self._lock:
            data = self._file(name)
            if offset < 0 or length < 0:
                raise StorageError("negative offset or length")
            if offset + length > len(data):
                raise StorageError(
                    f"read past EOF on {name!r}: offset={offset} length={length} "
                    f"size={len(data)}"
                )
            stats = self._active_stats()
            io_before = stats.io_time_ms
            hits_before = stats.cache_hits
            if length:
                self._charge(name, offset, length, write=False)
            stats.read_calls += 1
            stats.bytes_read += length
            stats.per_file_reads[name] = stats.per_file_reads.get(name, 0) + 1
            if self.tracer is not None:
                self.tracer.record(
                    "disk.read",
                    stats.io_time_ms - io_before,
                    file=name,
                    bytes=length,
                    cache_hits=stats.cache_hits - hits_before,
                )
            return bytes(data[offset : offset + length])

    def write(self, name: str, offset: int, payload: bytes) -> None:
        """Write *payload* at *offset* (may extend the file)."""
        with self._lock:
            data = self._file(name)
            if offset < 0:
                raise StorageError("negative offset")
            if offset > len(data):
                raise StorageError(
                    f"write would leave a hole in {name!r}: offset={offset} "
                    f"size={len(data)}"
                )
            end = offset + len(payload)
            if end > len(data):
                data.extend(b"\x00" * (end - len(data)))
            data[offset:end] = payload
            stats = self._active_stats()
            if payload:
                self._charge(name, offset, len(payload), write=True)
            stats.write_calls += 1
            stats.bytes_written += len(payload)

    def append(self, name: str, payload: bytes) -> int:
        """Append *payload*; returns the offset it was written at."""
        offset = len(self._file(name))
        self.write(name, offset, payload)
        return offset

    def truncate(self, name: str, size: int) -> None:
        """Shrink the file to *size* bytes."""
        data = self._file(name)
        if size < 0 or size > len(data):
            raise StorageError(f"bad truncate size {size} for {name!r}")
        del data[size:]
        self.cache.invalidate_prefix(name)

    def rename(self, old: str, new: str) -> None:
        """Rename a file, replacing *new* if it exists (atomic swap-in)."""
        if old not in self._files:
            raise StorageError(f"no such file: {old!r}")
        if new in self._files:
            del self._files[new]
            self.cache.invalidate_prefix(new)
        self._files[new] = self._files.pop(old)
        self.cache.invalidate_prefix(old)

    def sync(self, name: str) -> None:
        """Flush a file to stable storage.

        The simulated disk has no volatile write-back layer — every write
        is immediately "durable" — so this only validates the name.  The
        write-ahead journal still calls it so the same code path does a
        real ``fsync`` on :class:`~repro.storage.hostdisk.HostDisk`.
        """
        self._file(name)

    # ------------------------------------------------------------- cache ops

    def warm_file(self, name: str) -> None:
        """Pull a file's pages into the cache without charging I/O time.

        Used to reproduce the paper's "cache is warmed before each
        experiment" protocol where warming cost is excluded from
        measurements.
        """
        size = self.size(name)
        if size == 0:
            return
        last_page = (size - 1) // self.params.page_size
        for page in range(last_page + 1):
            self.cache.insert((name, page))

    def drop_cache(self) -> None:
        """Empty the page cache."""
        self.cache.clear()

    def reset_stats(self) -> None:
        """Zero every I/O counter."""
        self.stats = DiskStats()
        self.cache.reset_counters()

    # -------------------------------------------------------------- metrics

    def publish_metrics(self, registry=None, label: str = "disk0") -> None:
        """Mirror :class:`DiskStats` and cache state into a metrics registry.

        Registers a *collector* — a callback run at snapshot/export time —
        so the hot I/O path pays nothing.  Counters are exported as gauges
        holding the cumulative values (they reset with :meth:`reset_stats`,
        which a monotonic counter could not express).
        """
        from repro.obs.metrics import get_registry

        registry = registry if registry is not None else get_registry()
        labels = {"disk": label}

        def collect(reg) -> None:
            stats = self.stats
            pairs = (
                ("repro_disk_pages_read", stats.pages_read,
                 "Pages physically read (cache misses)."),
                ("repro_disk_pages_written", stats.pages_written,
                 "Pages physically written."),
                ("repro_disk_bytes_read", stats.bytes_read,
                 "Bytes returned by read calls."),
                ("repro_disk_bytes_written", stats.bytes_written,
                 "Bytes accepted by write calls."),
                ("repro_disk_seeks", stats.seeks,
                 "Full-cost head repositionings (paper's random accesses)."),
                ("repro_disk_read_calls", stats.read_calls,
                 "read() invocations."),
                ("repro_disk_write_calls", stats.write_calls,
                 "write() invocations."),
                ("repro_disk_io_time_ms", stats.io_time_ms,
                 "Modeled I/O milliseconds charged by the cost model."),
                ("repro_disk_cache_hits", stats.cache_hits,
                 "Page touches served from the LRU cache."),
                ("repro_disk_total_bytes", self.total_bytes(),
                 "Serialized footprint of every stored file."),
                ("repro_cache_resident_pages", len(self.cache),
                 "Pages currently resident in the LRU cache."),
            )
            for name, value, help_text in pairs:
                reg.gauge(name, labels=labels, help=help_text).set(value)
            hit_rate = self.cache.hit_rate
            reg.gauge(
                "repro_cache_hit_rate",
                labels=labels,
                help="LRU hits / (hits + misses) since the last reset.",
            ).set(hit_rate if hit_rate is not None else 0.0)

        registry.register_collector(collect)
        logger.debug("disk %s publishing metrics as disk=%s", id(self), label)

    # --------------------------------------------------------------- private

    def _file(self, name: str) -> bytearray:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def _charge(self, name: str, offset: int, length: int, *, write: bool) -> None:
        page_size = self.params.page_size
        first = offset // page_size
        last = (offset + length - 1) // page_size
        meters = self._meters()
        channel = self._channel()
        stats = self._active_stats()
        for page in range(first, last + 1):
            key = (name, page)
            if not write and self.cache.touch(key):
                stats.cache_hits += 1
                for meter in meters:
                    meter.cache_hits += 1
                continue
            if write:
                # Write-through: page becomes resident, cost is charged.
                self.cache.insert(key)
            seeks_before = stats.seeks
            cost = self._positioning_ms(name, page, channel, stats=stats)
            cost += self.params.transfer_ms_per_page
            stats.io_time_ms += cost
            if write:
                stats.pages_written += 1
            else:
                stats.pages_read += 1
            for meter in meters:
                meter.io_ms += cost
                meter.pages += 1
                meter.seeks += stats.seeks - seeks_before
            self._heads[channel] = (name, page)

    def _positioning_ms(
        self,
        name: str,
        page: int,
        channel: str = "main",
        *,
        stats: Optional[DiskStats] = None,
    ) -> float:
        """Head-movement cost of touching (name, page) on *channel*.

        * same page or the next page of the same file — sequential, free;
        * a short *forward* skip within the same file — the platter simply
          spins past the unwanted pages, so the cost is the pass-over time
          of the skipped pages, capped at a full seek (this is what makes
          a dense ascending-tid sweep of the table file cheap, as the
          paper's SII refine numbers imply);
        * anything else (backward, or another file) — a full seek.
        """
        head = self._heads.get(channel)
        if head is not None and head[0] == name:
            gap = page - head[1]
            if 0 <= gap <= 1:
                return 0.0
            if gap > 1:
                skip_ms = (gap - 1) * self.params.transfer_ms_per_page
                if skip_ms < self.params.seek_ms:
                    return skip_ms
        (stats if stats is not None else self._active_stats()).seeks += 1
        return self.params.seek_ms
