"""The interpreted row format of the table file.

The paper stores the SWT "horizontally in an interpreted format" (Beckmann
et al. [6], adopted in Sec. V-A): each row carries only its *defined*
(attribute id, value) pairs, self-describing enough to be parsed without a
fixed schema.  Our wire format:

```
row      := u32 total_length   # including this header, enables fwd scan
            u32 tid
            u16 num_entries
            entry*
entry    := u32 attr_id
            u8  type_tag       # 0 = numeric, 1 = text
            payload
numeric  := f64
text     := u8 num_strings, ( u16 byte_length, utf8 bytes )*
```

All integers little-endian.
"""

from __future__ import annotations

import struct
from typing import Iterator, Tuple

from repro.errors import StorageError
from repro.model.record import Record
from repro.model.values import is_numeric_value, is_text_value

_HEADER = struct.Struct("<IIH")
_ENTRY_HEAD = struct.Struct("<IB")
_F64 = struct.Struct("<d")
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")

TAG_NUMERIC = 0
TAG_TEXT = 1

MAX_STRINGS_PER_VALUE = 255
MAX_STRING_BYTES = 65535


def encode_record(record: Record) -> bytes:
    """Serialise a record into the interpreted row format."""
    body = bytearray()
    entries = sorted(record.cells.items())
    for attr_id, value in entries:
        if is_numeric_value(value):
            body += _ENTRY_HEAD.pack(attr_id, TAG_NUMERIC)
            body += _F64.pack(value)
        elif is_text_value(value):
            if len(value) > MAX_STRINGS_PER_VALUE:
                raise StorageError(
                    f"text value on attribute {attr_id} has {len(value)} "
                    f"strings; max is {MAX_STRINGS_PER_VALUE}"
                )
            body += _ENTRY_HEAD.pack(attr_id, TAG_TEXT)
            body += _U8.pack(len(value))
            for s in value:
                raw = s.encode("utf-8")
                if len(raw) > MAX_STRING_BYTES:
                    raise StorageError(
                        f"string of {len(raw)} bytes exceeds the "
                        f"{MAX_STRING_BYTES}-byte row-format limit"
                    )
                body += _U16.pack(len(raw))
                body += raw
        else:
            raise StorageError(
                f"record {record.tid} holds an unencodable value on "
                f"attribute {attr_id}: {value!r}"
            )
    total = _HEADER.size + len(body)
    return _HEADER.pack(total, record.tid, len(entries)) + bytes(body)


def decode_record(buffer: bytes, offset: int = 0) -> Tuple[Record, int]:
    """Parse one row at *offset*; returns (record, offset_after_row)."""
    if offset + _HEADER.size > len(buffer):
        raise StorageError("truncated row header")
    total, tid, num_entries = _HEADER.unpack_from(buffer, offset)
    end = offset + total
    if total < _HEADER.size or end > len(buffer):
        raise StorageError(f"corrupt row length {total} at offset {offset}")
    pos = offset + _HEADER.size
    record = Record(tid=tid)
    for _ in range(num_entries):
        if pos + _ENTRY_HEAD.size > end:
            raise StorageError("truncated row entry")
        attr_id, tag = _ENTRY_HEAD.unpack_from(buffer, pos)
        pos += _ENTRY_HEAD.size
        if tag == TAG_NUMERIC:
            if pos + _F64.size > end:
                raise StorageError("truncated numeric payload")
            (value,) = _F64.unpack_from(buffer, pos)
            pos += _F64.size
            record.cells[attr_id] = value
        elif tag == TAG_TEXT:
            if pos + 1 > end:
                raise StorageError("truncated text payload")
            (count,) = _U8.unpack_from(buffer, pos)
            pos += 1
            strings = []
            for _ in range(count):
                if pos + 2 > end:
                    raise StorageError("truncated string length")
                (byte_len,) = _U16.unpack_from(buffer, pos)
                pos += 2
                if pos + byte_len > end:
                    raise StorageError("truncated string bytes")
                strings.append(buffer[pos : pos + byte_len].decode("utf-8"))
                pos += byte_len
            record.cells[attr_id] = tuple(strings)
        else:
            raise StorageError(f"unknown entry type tag {tag}")
    if pos != end:
        raise StorageError(
            f"row at offset {offset} declares {total} bytes but entries "
            f"consumed {pos - offset}"
        )
    return record, end


def row_length(buffer: bytes, offset: int = 0) -> int:
    """Total byte length of the row starting at *offset*."""
    if offset + 4 > len(buffer):
        raise StorageError("truncated row header")
    (total,) = struct.unpack_from("<I", buffer, offset)
    return total


def iter_rows(buffer: bytes) -> Iterator[Record]:
    """Parse a concatenation of rows front to back."""
    offset = 0
    while offset < len(buffer):
        record, offset = decode_record(buffer, offset)
        yield record
