"""A real-filesystem backend with the simulated disk's interface.

Everything above the storage layer (tables, indices, engines) talks to a
*disk* through the same handful of methods; :class:`HostDisk` implements
them over an actual directory, so the library runs as a real embedded
database — no cost modeling, just genuine OS I/O.  The stats object keeps
the logical counters (calls, bytes); modeled time stays zero.

Notes:

* file names are mapped to safe host names (``/`` and odd characters are
  percent-escaped) inside the root directory;
* the ``cache`` attribute is a zero-capacity LRU so code poking cache
  counters keeps working;
* durability is the host filesystem's (writes go straight through).
"""

from __future__ import annotations

import mmap
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import StorageError
from repro.storage.cache import LRUCache
from repro.storage.disk import DiskParameters, DiskStats, IoMeter

_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def _host_name(name: str) -> str:
    out = []
    for ch in name:
        if ch in _SAFE:
            out.append(ch)
        else:
            out.append(f"%{ord(ch):04x}")
    return "".join(out)


class HostDisk:
    """Disk interface over a directory on the host filesystem."""

    def __init__(self, root: Union[str, Path], *, use_mmap: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.params = DiskParameters()
        self.stats = DiskStats()
        self.cache = LRUCache(0)
        #: Per-read span hook (unused here: real I/O has no modeled cost).
        self.tracer = None
        #: Serve :meth:`read_view` from shared read-only mmaps (zero-copy).
        self.use_mmap = use_mmap
        #: name -> (mapping, mapped size).  A mapping is superseded — never
        #: closed — when the file outgrows it or is mutated: handed-out
        #: memoryviews may still reference its buffer, and closing a mapped
        #: region with live exports raises ``BufferError``.
        self._maps: Dict[str, Tuple[mmap.mmap, int]] = {}
        self._retired_maps: List[mmap.mmap] = []
        self._tls = threading.local()
        self._names: dict = {}
        for path in self.root.iterdir():
            if path.is_file():
                self._names[self._logical_name(path.name)] = path.name

    @staticmethod
    def _logical_name(host: str) -> str:
        out = []
        i = 0
        while i < len(host):
            if host[i] == "%" and i + 4 < len(host):
                out.append(chr(int(host[i + 1 : i + 5], 16)))
                i += 5
            else:
                out.append(host[i])
                i += 1
        return "".join(out)

    def _path(self, name: str) -> Path:
        host = self._names.get(name)
        if host is None:
            raise StorageError(f"no such file: {name!r}")
        return self.root / host

    def _invalidate_map(self, name: str) -> None:
        mapped = self._maps.pop(name, None)
        if mapped is not None:
            self._retired_maps.append(mapped[0])

    # ------------------------------------------------------------------ files

    def create(self, name: str, *, overwrite: bool = False) -> None:
        """Create an empty file (overwrite optional)."""
        if name in self._names and not overwrite:
            raise StorageError(f"file already exists: {name!r}")
        self._invalidate_map(name)
        host = _host_name(name)
        (self.root / host).write_bytes(b"")
        self._names[name] = host

    def delete(self, name: str) -> None:
        """Tombstone the tuple with this tid."""
        path = self._path(name)
        self._invalidate_map(name)
        path.unlink()
        del self._names[name]

    def exists(self, name: str) -> bool:
        """True if the file exists."""
        return name in self._names

    def size(self, name: str) -> int:
        """Current number of members."""
        return self._path(name).stat().st_size

    def list_files(self) -> Tuple[str, ...]:
        """All file names, sorted."""
        return tuple(sorted(self._names))

    def total_bytes(self) -> int:
        """Total serialized footprint in bytes."""
        return sum(self.size(name) for name in self._names)

    # ------------------------------------------------------------------- I/O

    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read one tuple by address."""
        if offset < 0 or length < 0:
            raise StorageError("negative offset or length")
        path = self._path(name)
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read(length)
        if len(data) != length:
            # A short read is indistinguishable from silent truncation
            # upstream — report exactly what came back so fsck/repair can
            # classify it, never return fewer bytes than asked for.
            raise StorageError(
                f"short read on {name!r}: offset={offset} "
                f"expected={length} actual={len(data)}"
            )
        stats = self._active_stats()
        stats.read_calls += 1
        stats.bytes_read += length
        stats.per_file_reads[name] = stats.per_file_reads.get(name, 0) + 1
        return data

    def read_view(self, name: str, offset: int, length: int) -> memoryview:
        """Zero-copy read: a memoryview over a shared read-only mmap.

        The optional capability :class:`~repro.storage.pager.BufferedReader`
        probes for — same validation and short-read contract as
        :meth:`read`, but the returned view aliases the OS page cache
        instead of copying.  A view stays valid across later mutations of
        the file: the superseded mapping is retired, not closed (the
        exported buffer pins it), and the next ``read_view`` remaps.

        With ``use_mmap=False`` this degrades to a copying :meth:`read`
        wrapped in a memoryview, so callers need no fallback of their own.
        """
        if offset < 0 or length < 0:
            raise StorageError("negative offset or length")
        if not self.use_mmap or length == 0:
            return memoryview(self.read(name, offset, length))
        path = self._path(name)
        end = offset + length
        mapped = self._maps.get(name)
        if mapped is None or mapped[1] < end:
            self._invalidate_map(name)
            size = path.stat().st_size
            if end > size:
                actual = max(0, size - offset)
                raise StorageError(
                    f"short read on {name!r}: offset={offset} "
                    f"expected={length} actual={actual}"
                )
            with open(path, "rb") as fh:
                mapping = mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_READ)
            mapped = (mapping, size)
            self._maps[name] = mapped
        stats = self._active_stats()
        stats.read_calls += 1
        stats.bytes_read += length
        stats.mmap_reads += 1
        stats.per_file_reads[name] = stats.per_file_reads.get(name, 0) + 1
        return memoryview(mapped[0])[offset:end]

    def write(self, name: str, offset: int, payload: bytes) -> None:
        """Write bytes at an offset (may extend the file)."""
        if offset < 0:
            raise StorageError("negative offset")
        path = self._path(name)
        self._invalidate_map(name)
        size = path.stat().st_size
        if offset > size:
            raise StorageError(
                f"write would leave a hole in {name!r}: offset={offset} size={size}"
            )
        with open(path, "r+b") as fh:
            fh.seek(offset)
            written = fh.write(payload)
        if written != len(payload):
            raise StorageError(
                f"partial write on {name!r}: offset={offset} "
                f"expected={len(payload)} actual={written}"
            )
        stats = self._active_stats()
        stats.write_calls += 1
        stats.bytes_written += len(payload)

    def append(self, name: str, payload: bytes) -> int:
        """Append bytes; returns the offset written at."""
        path = self._path(name)
        self._invalidate_map(name)
        with open(path, "ab") as fh:
            offset = fh.tell()
            written = fh.write(payload)
        if written != len(payload):
            raise StorageError(
                f"partial write on {name!r}: offset={offset} "
                f"expected={len(payload)} actual={written}"
            )
        stats = self._active_stats()
        stats.write_calls += 1
        stats.bytes_written += len(payload)
        return offset

    def truncate(self, name: str, size: int) -> None:
        """Shrink the file to *size* bytes."""
        path = self._path(name)
        self._invalidate_map(name)
        current = path.stat().st_size
        if size < 0 or size > current:
            raise StorageError(f"bad truncate size {size} for {name!r}")
        with open(path, "r+b") as fh:
            fh.truncate(size)

    def rename(self, old: str, new: str) -> None:
        """Rename a file, replacing the target if present."""
        path = self._path(old)
        self._invalidate_map(old)
        self._invalidate_map(new)
        new_host = _host_name(new)
        if new in self._names:
            (self.root / self._names[new]).unlink()
            del self._names[new]
        path.rename(self.root / new_host)
        del self._names[old]
        self._names[new] = new_host

    def sync(self, name: str) -> None:
        """``fsync`` the file — real durability for the write-ahead journal."""
        path = self._path(name)
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------- cache ops

    def warm_file(self, name: str) -> None:
        """No-op: the OS page cache is in charge here."""
        self._path(name)

    def drop_cache(self) -> None:
        """Empty the page cache."""
        pass

    def reset_stats(self) -> None:
        """Zero every I/O counter."""
        self.stats = DiskStats()

    # --------------------------------------------------- I/O attribution

    @contextmanager
    def metered(self):
        """Yield an :class:`IoMeter`; stays zero (no modeled charges here).

        Exists so code written against :class:`~repro.storage.backend.StorageBackend`
        — the parallel executor's per-shard accounting in particular — runs
        unchanged on a host directory.
        """
        yield IoMeter()

    @contextmanager
    def io_channel(self, name: str):
        """No-op: the OS I/O scheduler owns head positioning here."""
        yield

    def _active_stats(self) -> DiskStats:
        """The :class:`DiskStats` this thread's counters land in."""
        override = getattr(self._tls, "stats", None)
        return self.stats if override is None else override

    @contextmanager
    def accounting_scope(self, stats: Optional[DiskStats] = None):
        """Route this thread's counters into a side :class:`DiskStats`.

        Same contract as :meth:`SimulatedDisk.accounting_scope`: background
        maintenance opens a scope so its I/O stays out of the global
        counters other threads keep charging.
        """
        scoped = stats if stats is not None else DiskStats()
        previous = getattr(self._tls, "stats", None)
        self._tls.stats = scoped
        try:
            yield scoped
        finally:
            self._tls.stats = previous

    def publish_metrics(self, registry=None, label: str = "disk0") -> None:
        """Mirror the logical counters into a metrics registry.

        Same collector shape as the simulated backend; modeled-time and
        cache series simply stay zero.
        """
        from repro.obs.metrics import get_registry

        registry = registry if registry is not None else get_registry()
        labels = {"disk": label}

        def collect(reg) -> None:
            stats = self.stats
            pairs = (
                ("repro_disk_bytes_read", stats.bytes_read,
                 "Bytes returned by read calls."),
                ("repro_disk_bytes_written", stats.bytes_written,
                 "Bytes accepted by write calls."),
                ("repro_disk_read_calls", stats.read_calls,
                 "read() invocations."),
                ("repro_disk_write_calls", stats.write_calls,
                 "write() invocations."),
                ("repro_disk_mmap_reads", stats.mmap_reads,
                 "Zero-copy read_view() calls served from a shared mmap."),
            )
            for name, value, help_text in pairs:
                reg.gauge(name, labels, help=help_text).set(float(value))

        registry.register_collector(collect)
