"""Integrity checking and repair for tables and iVA-files.

A release-grade store ships a checker: ``check_table`` walks the row file
and cross-checks the catalog/tombstone files; ``check_index`` verifies the
iVA-file's lists against each other and against the table (tuple-list
coverage, attribute-list sizes, positional element counts, decodable
vectors); ``check_checksums`` asks a checksumming backend to verify every
file's CRC32C frames.  All return :class:`Finding` lists instead of
raising, so a caller can report everything wrong at once.  Findings carry
a ``kind`` — ``structure`` (cross-file invariants), ``checksum`` (stored
bytes disagree with their recorded CRCs), ``unreadable`` (the bytes could
not be fetched at all) — and ``repair_index`` quarantines damaged vector
lists and rebuilds them from the base table, the source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.iva_file import IVAFile, _ATTR_ELEMENT
from repro.core.tuple_list import DELETED_PTR, ELEMENT as TUPLE_ELEMENT
from repro.errors import ChecksumError, StorageError
from repro.model.values import is_text_value
from repro.obs import get_tracer
from repro.storage.interpreted import decode_record
from repro.storage.table import SparseWideTable

#: Finding kinds, in the order repair cares about them.
FINDING_KINDS = ("structure", "checksum", "unreadable")


@dataclass(frozen=True)
class Finding:
    """One integrity problem."""

    severity: str  # "error" | "warning"
    location: str
    message: str
    #: What class of damage: one of :data:`FINDING_KINDS`.
    kind: str = "structure"

    def __str__(self) -> str:
        return f"[{self.severity}] {self.location}: {self.message}"


def _error_kind(exc: Exception) -> str:
    """Classify an exception raised while fetching/decoding stored bytes."""
    if isinstance(exc, ChecksumError):
        return "checksum"
    if isinstance(exc, StorageError):
        return "unreadable"
    return "structure"


def check_checksums(backend) -> List[Finding]:
    """Verify every file's CRC32C frames, if the backend records any.

    Duck-typed: only backends exposing ``verify_file`` (the resilience
    layer's :class:`~repro.resilience.ChecksummedBackend`) are checked;
    a bare disk yields no findings.  Sidecar files verify their data
    file, never themselves.
    """
    verify = getattr(backend, "verify_file", None)
    if verify is None:
        return []
    from repro.resilience.checksum import is_sidecar

    findings: List[Finding] = []
    for name in sorted(backend.list_files()):
        if is_sidecar(name):
            continue
        try:
            problems = verify(name)
        except StorageError as exc:
            findings.append(
                Finding("error", name, f"unreadable: {exc}", kind="unreadable")
            )
            continue
        for problem in problems:
            findings.append(Finding("error", name, problem, kind="checksum"))
    return findings


def check_table(table: SparseWideTable) -> List[Finding]:
    """Validate the table's on-disk files against each other."""
    findings: List[Finding] = []
    disk = table.disk

    # 1. Row chain: every byte of the row file must parse.
    try:
        raw = disk.read(table.file_name, 0, disk.size(table.file_name))
    except StorageError as exc:
        findings.append(
            Finding(
                "error",
                table.file_name,
                f"unreadable: {exc}",
                kind="unreadable",
            )
        )
        return findings
    offset = 0
    seen_tids = set()
    previous_tid = -1
    while offset < len(raw):
        try:
            record, offset = decode_record(raw, offset)
        except StorageError as exc:
            findings.append(
                Finding("error", f"{table.file_name}@{offset}", f"corrupt row: {exc}")
            )
            break
        if record.tid in seen_tids:
            findings.append(
                Finding(
                    "error",
                    table.file_name,
                    f"tid {record.tid} appears in more than one row",
                )
            )
        if record.tid <= previous_tid:
            findings.append(
                Finding(
                    "warning",
                    table.file_name,
                    f"rows out of tid order at tid {record.tid} "
                    "(legal only right after interleaved rebuild/insert races)",
                )
            )
        previous_tid = max(previous_tid, record.tid)
        seen_tids.add(record.tid)
        # 2. Every attribute id must exist in the catalog with the right kind.
        for attr_id, value in record.cells.items():
            if attr_id >= len(table.catalog):
                findings.append(
                    Finding(
                        "error",
                        f"tid {record.tid}",
                        f"references unknown attribute id {attr_id}",
                    )
                )
                continue
            attr = table.catalog.by_id(attr_id)
            if attr.is_text != is_text_value(value):
                findings.append(
                    Finding(
                        "error",
                        f"tid {record.tid}",
                        f"value kind disagrees with catalog for {attr.name!r}",
                    )
                )

    # 3. Tombstones must refer to stored rows.
    size = disk.size(table.tombstone_file)
    try:
        raw_tombs = disk.read(table.tombstone_file, 0, size)
    except StorageError as exc:
        findings.append(
            Finding(
                "error",
                table.tombstone_file,
                f"unreadable: {exc}",
                kind="unreadable",
            )
        )
        return findings
    if size % 4:
        findings.append(
            Finding("error", table.tombstone_file, "truncated tombstone entry")
        )
    for i in range(size // 4):
        tid = int.from_bytes(raw_tombs[4 * i : 4 * i + 4], "little")
        if tid not in seen_tids:
            findings.append(
                Finding(
                    "warning",
                    table.tombstone_file,
                    f"tombstone for tid {tid} which has no row "
                    "(already cleaned?)",
                )
            )
    return findings


def check_index(index: IVAFile) -> List[Finding]:
    """Validate the iVA-file's lists against each other and the table."""
    findings: List[Finding] = []
    disk = index.disk
    table = index.table

    # 1. Tuple list: parseable, increasing tids, live tids point at rows.
    size = disk.size(index.tuples_file)
    if size % TUPLE_ELEMENT.size:
        findings.append(
            Finding("error", index.tuples_file, "truncated tuple-list element")
        )
    element_count = size // TUPLE_ELEMENT.size
    previous = -1
    live_in_list = set()
    tuples_readable = True
    try:
        for tid, ptr in index._tuples.scan():
            if tid <= previous:
                findings.append(
                    Finding(
                        "error", index.tuples_file, f"tids not increasing at {tid}"
                    )
                )
            previous = tid
            if ptr != DELETED_PTR:
                live_in_list.add(tid)
                if not table.is_live(tid):
                    findings.append(
                        Finding(
                            "error",
                            index.tuples_file,
                            f"tuple list holds live tid {tid} the table "
                            "considers dead",
                        )
                    )
    except StorageError as exc:
        tuples_readable = False
        findings.append(
            Finding(
                "error",
                index.tuples_file,
                f"unreadable: {exc}",
                kind="unreadable",
            )
        )

    if tuples_readable:
        for tid in table.live_tids():
            if tid not in live_in_list:
                findings.append(
                    Finding(
                        "error",
                        index.tuples_file,
                        f"table tid {tid} is missing from the tuple list",
                    )
                )

    # 2. Attribute list covers the catalog, sizes match the files.
    attrs_size = disk.size(index.attrs_file)
    if attrs_size % _ATTR_ELEMENT.size:
        findings.append(
            Finding("error", index.attrs_file, "truncated attribute-list element")
        )
    if attrs_size // _ATTR_ELEMENT.size < len(index.entries()):
        findings.append(
            Finding("error", index.attrs_file, "fewer elements than entries")
        )
    for entry in index.entries():
        file_name = index.vector_file(entry.attr.attr_id)
        if not disk.exists(file_name):
            findings.append(
                Finding("error", file_name, "vector list file missing")
            )
            continue
        actual = disk.size(file_name)
        if actual != entry.list_size:
            findings.append(
                Finding(
                    "error",
                    file_name,
                    f"attribute list says {entry.list_size} bytes, file has {actual}",
                )
            )

    # 3. Positional lists must hold exactly one element per tuple-list
    #    element; every vector must decode.  Drive real scanners through
    #    the whole list.
    for entry in index.entries() if tuples_readable else ():
        scanner = index.make_scanner(entry.attr.attr_id)
        try:
            for tid, _ in index._tuples.scan():
                scanner.move_to(tid)
        except Exception as exc:  # noqa: BLE001 - fsck reports, never raises
            findings.append(
                Finding(
                    "error",
                    index.vector_file(entry.attr.attr_id),
                    f"vector list does not decode: {exc}",
                    kind=_error_kind(exc),
                )
            )
            continue
        if entry.is_positional:
            reader_pos = getattr(scanner, "_reader", None)
            if reader_pos is not None and not reader_pos.exhausted():
                findings.append(
                    Finding(
                        "error",
                        index.vector_file(entry.attr.attr_id),
                        f"{element_count} tuples but extra positional "
                        "elements remain",
                    )
                )

    # 4. Codec-level structure: varint streams terminate exactly at the
    #    recorded list size, tid/gap sequences stay monotone, packed lists
    #    match their fixed width.  The scanner drive above only proves the
    #    bytes *a query touches* decode; this pass re-validates the whole
    #    payload against the wire format's own invariants.
    findings.extend(check_codec_structure(index))
    return findings


def check_codec_structure(index: IVAFile) -> List[Finding]:
    """Per-list wire-format validation via each entry's codec.

    Delegates to :meth:`repro.codec.base.VectorListCodec.check_list`, so
    the checks track the attribute's *recorded* codec (a mixed-codec index
    after attach is validated list by list).
    """
    findings: List[Finding] = []
    disk = index.disk
    for entry in index.entries():
        file_name = index.vector_file(entry.attr.attr_id)
        if not disk.exists(file_name):
            continue  # already reported by the size cross-check
        try:
            payload = disk.read(file_name, 0, disk.size(file_name))
        except StorageError as exc:
            findings.append(
                Finding(
                    "error",
                    file_name,
                    f"unreadable: {exc}",
                    kind=_error_kind(exc),
                )
            )
            continue
        codec = entry.codec_impl
        is_text = entry.attr.is_text
        with get_tracer().span(
            "codec.decode", codec=codec.name, phase="fsck", attr=entry.attr.name
        ):
            problems = codec.check_list(
                entry.list_type,
                is_text,
                entry.scheme if is_text else entry.quantizer,
                payload,
                index.tuple_elements,
            )
        for problem in problems:
            findings.append(
                Finding("error", file_name, f"codec {codec.name}: {problem}")
            )
    return findings


def check_all(table: SparseWideTable, index: IVAFile) -> List[Finding]:
    """Checksum, table, and index checks combined."""
    return check_checksums(table.disk) + check_table(table) + check_index(index)


def repair_index(
    table: SparseWideTable, index: IVAFile, findings: Sequence[Finding]
) -> List[str]:
    """Quarantine damaged index structures and rebuild them from the table.

    The iVA-file is wholly derived from the base table, so any index-side
    damage is repairable: an error finding on a vector list drops and
    re-derives just that list (:meth:`IVAFile.rebuild_attribute`); damage
    to the tuple or attribute list forces a full :meth:`IVAFile.rebuild`.
    Table-file findings are *not* repairable — the table is the source of
    truth — and are reported back as such.  Returns a human-readable
    action log, one line per repair taken or refused.
    """
    vector_attrs = {
        index.vector_file(entry.attr.attr_id): entry.attr.attr_id
        for entry in index.entries()
    }
    index_files = {index.tuples_file, index.attrs_file}
    rebuild_attrs = set()
    full_rebuild = False
    unrepairable: List[Finding] = []
    for finding in findings:
        if finding.severity != "error":
            continue
        name = finding.location.split("@", 1)[0]
        if name in vector_attrs:
            rebuild_attrs.add(vector_attrs[name])
        elif name in index_files:
            full_rebuild = True
        else:
            unrepairable.append(finding)

    actions: List[str] = []
    if full_rebuild:
        index.rebuild()
        actions.append(
            f"rebuilt index {index.config.name!r} from the base table "
            "(tuple/attribute list damage)"
        )
    else:
        for attr_id in sorted(rebuild_attrs):
            index.rebuild_attribute(attr_id)
            actions.append(
                f"rebuilt vector list {index.vector_file(attr_id)!r} "
                "from the base table"
            )
    for finding in unrepairable:
        actions.append(
            f"cannot repair {finding.location}: {finding.message} "
            "(the table file is the source of truth)"
        )
    return actions
