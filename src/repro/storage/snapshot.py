"""Host-file snapshots of a simulated disk.

The simulated environment lives in memory; a snapshot serialises every
file (plus the disk's cost-model parameters) to one real file on the host
filesystem, and :func:`load_disk` restores it.  Together with
``SparseWideTable.attach`` and ``IVAFile.attach`` this gives the library a
full persistence story: build once, snapshot, re-open later.

Format (little-endian):

```
magic   "IVAREPRO1"
u16     params_json_length,  params json (page_size, seek_ms, ...)
u32     file_count
file    := u16 name_length, utf-8 name, u64 size, raw bytes
```
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import StorageError
from repro.storage.disk import DiskParameters, SimulatedDisk

MAGIC = b"IVAREPRO1"


def save_disk(disk: SimulatedDisk, path: Union[str, Path]) -> int:
    """Write a snapshot of *disk* to *path*; returns bytes written."""
    params = {
        "page_size": disk.params.page_size,
        "seek_ms": disk.params.seek_ms,
        "transfer_mb_per_s": disk.params.transfer_mb_per_s,
        "cache_bytes": disk.params.cache_bytes,
    }
    params_raw = json.dumps(params, sort_keys=True).encode("utf-8")
    out = bytearray()
    out += MAGIC
    out += len(params_raw).to_bytes(2, "little")
    out += params_raw
    names = disk.list_files()
    out += len(names).to_bytes(4, "little")
    for name in names:
        raw_name = name.encode("utf-8")
        if len(raw_name) > 65535:
            raise StorageError(f"file name too long to snapshot: {name!r}")
        size = disk.size(name)
        out += len(raw_name).to_bytes(2, "little")
        out += raw_name
        out += size.to_bytes(8, "little")
        out += disk.read(name, 0, size)
    Path(path).write_bytes(bytes(out))
    return len(out)


def load_disk(path: Union[str, Path]) -> SimulatedDisk:
    """Restore a simulated disk from a snapshot file."""
    raw = Path(path).read_bytes()
    if not raw.startswith(MAGIC):
        raise StorageError(f"{path!s} is not an iVA-repro snapshot")
    pos = len(MAGIC)
    params_len = int.from_bytes(raw[pos : pos + 2], "little")
    pos += 2
    try:
        params = json.loads(raw[pos : pos + params_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"corrupt snapshot parameters in {path!s}") from exc
    pos += params_len
    disk = SimulatedDisk(
        DiskParameters(
            page_size=int(params["page_size"]),
            seek_ms=float(params["seek_ms"]),
            transfer_mb_per_s=float(params["transfer_mb_per_s"]),
            cache_bytes=int(params["cache_bytes"]),
        )
    )
    if pos + 4 > len(raw):
        raise StorageError(f"truncated snapshot: {path!s}")
    file_count = int.from_bytes(raw[pos : pos + 4], "little")
    pos += 4
    for _ in range(file_count):
        if pos + 2 > len(raw):
            raise StorageError(f"truncated snapshot: {path!s}")
        name_len = int.from_bytes(raw[pos : pos + 2], "little")
        pos += 2
        name = raw[pos : pos + name_len].decode("utf-8")
        pos += name_len
        if pos + 8 > len(raw):
            raise StorageError(f"truncated snapshot: {path!s}")
        size = int.from_bytes(raw[pos : pos + 8], "little")
        pos += 8
        if pos + size > len(raw):
            raise StorageError(f"truncated snapshot: {path!s}")
        disk.create(name)
        disk.write(name, 0, raw[pos : pos + size])
        pos += size
    if pos != len(raw):
        raise StorageError(f"trailing bytes in snapshot: {path!s}")
    # Restoring is an out-of-band operation: charge nothing for it.
    disk.reset_stats()
    return disk
