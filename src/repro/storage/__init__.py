"""Storage substrate: simulated disk, cache, row codec, wide table.

The paper's evaluation (Sec. V) runs on a 2009-era machine with a spinning
disk and a 10 MB file cache.  We reproduce the *behavioural* substrate with
:class:`~repro.storage.disk.SimulatedDisk` — a byte-addressable, page-grained
store with an explicit seek/transfer cost model and full I/O accounting — so
the paper's I/O-bound comparisons (sequential index scans vs. random table
accesses) can be regenerated deterministically on any machine.
"""

from repro.storage.cache import LRUCache
from repro.storage.disk import DiskParameters, DiskStats, IoMeter, SimulatedDisk
from repro.storage.hostdisk import HostDisk
from repro.storage.backend import StorageBackend, host_backend, simulated_backend
from repro.storage.catalog import Catalog
from repro.storage.interpreted import decode_record, encode_record
from repro.storage.pager import BufferedReader
from repro.storage.table import SparseWideTable, TableStats

__all__ = [
    "LRUCache",
    "DiskParameters",
    "DiskStats",
    "IoMeter",
    "SimulatedDisk",
    "HostDisk",
    "StorageBackend",
    "simulated_backend",
    "host_backend",
    "Catalog",
    "encode_record",
    "decode_record",
    "BufferedReader",
    "SparseWideTable",
    "TableStats",
]
