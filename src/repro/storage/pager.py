"""Buffered sequential reading on top of the simulated disk.

Scan-based indices read their lists front-to-back.  Issuing one simulated
read per element would distort the cost model (every tiny read touching the
same page would be a cache hit anyway, but the call overhead in Python is
real), so scans go through :class:`BufferedReader`, which fetches large
sequential chunks and serves small slices out of them — exactly what a real
buffered file reader does.
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.errors import StorageError
from repro.obs.metrics import get_registry
from repro.storage.backend import StorageBackend

logger = logging.getLogger(__name__)

DEFAULT_CHUNK_BYTES = 64 * 1024


class BufferedReader:
    """Read-forward cursor over a byte range of a simulated file."""

    def __init__(
        self,
        disk: StorageBackend,
        name: str,
        start: int,
        end: Optional[int] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self._disk = disk
        self._name = name
        self._end = disk.size(name) if end is None else end
        if start < 0 or start > self._end:
            raise StorageError(
                f"bad reader range on {name!r}: start={start} end={self._end}"
            )
        self._pos = start
        self._chunk_bytes = chunk_bytes
        self._buffer = b""
        self._buffer_start = start
        # Zero-copy seam: mmap-capable backends expose ``read_view``; probe
        # once here so the hot loop is a plain attribute check.  The probe
        # is deliberately duck-typed — DelegatingBackend wrappers that must
        # not be bypassed (checksummed frames) pin ``read_view = None``.
        view = getattr(disk, "read_view", None)
        self._disk_view = view if callable(view) else None

    @property
    def position(self) -> int:
        """Absolute offset of the next byte to be returned."""
        return self._pos

    @property
    def end(self) -> int:
        """Exclusive end offset of the readable range."""
        return self._end

    def exhausted(self) -> bool:
        """True when the cursor reached the range end."""
        return self._pos >= self._end

    def remaining(self) -> int:
        """Bytes left before the range end."""
        return self._end - self._pos

    def read(self, length: int) -> bytes:
        """Read exactly *length* bytes; raises StorageError past the range."""
        if length < 0:
            raise StorageError("negative read length")
        if self._pos + length > self._end:
            raise StorageError(
                f"read past range end on {self._name!r}: pos={self._pos} "
                f"length={length} end={self._end}"
            )
        out = bytearray()
        while length:
            available = self._buffer_start + len(self._buffer) - self._pos
            if available <= 0:
                self._fill()
                continue
            take = min(length, available)
            at = self._pos - self._buffer_start
            out += self._buffer[at : at + take]
            self._pos += take
            length -= take
        return bytes(out)

    def read_view(self, length: int):
        """Read exactly *length* bytes, zero-copy where the backend allows.

        Returns a :class:`memoryview` when the span sits inside the current
        buffer or the backend exposes mmap-backed ``read_view``; otherwise
        falls back to :meth:`read` (plain bytes).  Either return type is a
        valid buffer for ``numpy.frombuffer`` — the segment decoders'
        bulk-crack entry point.
        """
        if length < 0:
            raise StorageError("negative read length")
        if self._pos + length > self._end:
            raise StorageError(
                f"read past range end on {self._name!r}: pos={self._pos} "
                f"length={length} end={self._end}"
            )
        available = self._buffer_start + len(self._buffer) - self._pos
        if available >= length:
            at = self._pos - self._buffer_start
            self._pos += length
            return memoryview(self._buffer)[at : at + length]
        if self._disk_view is not None:
            view = self._disk_view(self._name, self._pos, length)
            self._pos += length
            registry = get_registry()
            registry.counter(
                "repro_pager_fills_total",
                help="Chunk fetches issued by buffered sequential readers.",
            ).inc()
            registry.counter(
                "repro_pager_bytes_total",
                help="Bytes fetched by buffered sequential readers.",
            ).inc(length)
            return view
        return self.read(length)

    def skip(self, length: int) -> None:
        """Advance without materialising bytes (still bounded by the range).

        Skipped bytes that fall inside the current buffer cost nothing extra;
        larger skips simply move the cursor — the next :meth:`read` fetches
        from the new position (a forward seek within a sequential scan).
        """
        if length < 0:
            raise StorageError("negative skip length")
        if self._pos + length > self._end:
            raise StorageError("skip past range end")
        self._pos += length

    def _fill(self) -> None:
        start = self._pos
        length = min(self._chunk_bytes, self._end - start)
        if length <= 0:
            raise StorageError("buffered reader exhausted")
        if self._disk_view is not None:
            self._buffer = self._disk_view(self._name, start, length)
        else:
            self._buffer = self._disk.read(self._name, start, length)
        self._buffer_start = start
        registry = get_registry()
        registry.counter(
            "repro_pager_fills_total",
            help="Chunk fetches issued by buffered sequential readers.",
        ).inc()
        registry.counter(
            "repro_pager_bytes_total",
            help="Bytes fetched by buffered sequential readers.",
        ).inc(length)
