"""A page-grained LRU cache.

Models the 10 MB file cache the paper places in front of the index and table
files (Sec. V-A: "We set a 10 MB file cache in memory for the index and the
table file operations. The cache is warmed before each experiment.").
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from typing import Hashable, Optional

logger = logging.getLogger(__name__)


class LRUCache:
    """Fixed-capacity LRU set of page keys.

    The cache tracks *which* pages are resident, not their bytes — the
    simulated disk keeps all data in memory anyway; the cache only decides
    whether an access costs simulated I/O.
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[Hashable, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Optional :class:`repro.obs.trace.Tracer`; when set, every touch
        #: records a ``cache.lookup`` span.  Strictly opt-in — this is the
        #: hottest path in the system.
        self.tracer = None

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pages

    def touch(self, key: Hashable) -> bool:
        """Access a page.  Returns True on a hit (page already resident).

        On a miss the page is brought in, evicting the least-recently-used
        page if the cache is full.
        """
        if self.capacity_pages == 0:
            self.misses += 1
            hit = False
        elif key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            hit = True
        else:
            self.misses += 1
            self._insert(key)
            hit = False
        if self.tracer is not None:
            self.tracer.record("cache.lookup", 0.0, key=str(key), hit=hit)
        return hit

    def insert(self, key: Hashable) -> None:
        """Bring a page in (e.g. after a write) without counting a hit/miss."""
        if self.capacity_pages == 0:
            return
        if key in self._pages:
            self._pages.move_to_end(key)
        else:
            self._insert(key)

    def invalidate(self, key: Hashable) -> None:
        """Drop a page if resident (e.g. the file was deleted)."""
        self._pages.pop(key, None)

    def invalidate_prefix(self, prefix: object) -> None:
        """Drop every resident page whose key's first element equals *prefix*.

        Page keys are ``(file_name, page_no)`` tuples; this drops a whole
        file, used when a file is deleted or truncated.
        """
        doomed = [k for k in self._pages if isinstance(k, tuple) and k and k[0] == prefix]
        for key in doomed:
            del self._pages[key]

    def clear(self) -> None:
        """Drop every cached page."""
        logger.debug("cache cleared: %d page(s) dropped", len(self._pages))
        self._pages.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> Optional[float]:
        """Hits / (hits + misses), or None before any access."""
        total = self.hits + self.misses
        if total == 0:
            return None
        return self.hits / total

    def _insert(self, key: Hashable) -> None:
        self._pages[key] = None
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
