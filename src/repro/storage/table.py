"""The sparse wide table: an interpreted-format row file plus catalog.

Implements the storage substrate of Sec. III-A / V-A: a single physical
table holding every tuple's defined cells in the interpreted row format,
with append-only inserts, tombstone deletes, update = delete + insert under
a fresh tid, and periodic compaction (``rebuild``) — the update model of
Sec. IV-B.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.errors import SchemaError, StorageError
from repro.model.record import Record
from repro.model.schema import AttributeDef
from repro.model.values import (
    CellValue,
    coerce_value,
    is_ndf,
    is_numeric_value,
    is_text_value,
)
from repro.storage.catalog import Catalog
from repro.storage.backend import StorageBackend
from repro.storage.interpreted import decode_record, encode_record
from repro.storage.pager import BufferedReader


logger = logging.getLogger(__name__)


@dataclass
class AttributeStats:
    """Per-attribute statistics maintained incrementally on insert/delete."""

    #: Number of live tuples defining the attribute (the paper's ``df``).
    df: int = 0
    #: Total number of strings stored on the attribute (``str``; 0 if numeric).
    str_count: int = 0
    #: Observed numeric range — the *relative domain* of Sec. III-C.
    min_value: Optional[float] = None
    max_value: Optional[float] = None

    def observe_numeric(self, value: float) -> None:
        """Widen the observed numeric domain with *value*."""
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value


@dataclass
class TableStats:
    """Aggregate statistics used by index builders and ITF weighting."""

    live_tuples: int = 0
    per_attribute: Dict[int, AttributeStats] = field(default_factory=dict)

    def attr(self, attr_id: int) -> AttributeStats:
        """Per-attribute statistics, created on first touch."""
        stats = self.per_attribute.get(attr_id)
        if stats is None:
            stats = AttributeStats()
            self.per_attribute[attr_id] = stats
        return stats


class SparseWideTable:
    """A schema-free wide table stored as one interpreted-format file."""

    def __init__(
        self,
        disk: StorageBackend,
        name: str = "table",
        catalog: Optional[Catalog] = None,
    ) -> None:
        self.disk = disk
        self.name = name
        self.file_name = f"{name}.dat"
        self.catalog_file = f"{name}.catalog"
        self.tombstone_file = f"{name}.tombstones"
        # `catalog or Catalog()` would discard an *empty* shared catalog
        # (Catalog defines __len__, so a fresh one is falsy).
        self.catalog = catalog if catalog is not None else Catalog()
        self.stats = TableStats()
        self._directory: Dict[int, Tuple[int, int]] = {}
        self._tombstones: Set[int] = set()
        self._next_tid = 0
        self._persisted_attrs = 0
        for file_name in (self.file_name, self.catalog_file, self.tombstone_file):
            if not disk.exists(file_name):
                disk.create(file_name)

    # ---------------------------------------------------------------- sizing

    def __len__(self) -> int:
        """Number of live tuples."""
        return self.stats.live_tuples

    @property
    def file_bytes(self) -> int:
        """Current size of the table's row file."""
        return self.disk.size(self.file_name)

    @property
    def dead_tuples(self) -> int:
        """Tombstoned (not yet cleaned) tuples."""
        return len(self._tombstones)

    def live_tids(self) -> List[int]:
        """Live tids in increasing order."""
        return sorted(tid for tid in self._directory if tid not in self._tombstones)

    def is_live(self, tid: int) -> bool:
        """True if the tid exists and is not tombstoned."""
        return tid in self._directory and tid not in self._tombstones

    @property
    def next_tid(self) -> int:
        """The tid the next insert will be assigned."""
        return self._next_tid

    def advance_next_tid(self, next_tid: int) -> None:
        """Raise the tid allocator to at least *next_tid* (never lowers it).

        Crash recovery needs this: :meth:`attach` recomputes the allocator
        from the records present in the file, but a checkpoint taken after
        compaction has dropped dead rows, so the highest surviving tid can
        undershoot the highest tid ever issued.  Replaying the journal
        against such a snapshot would re-issue old tids — the journal's
        durable state carries the true allocator value and restores it
        here before replay.
        """
        self._next_tid = max(self._next_tid, int(next_tid))

    # --------------------------------------------------------------- inserts

    def prepare_cells(self, values: Mapping[str, object]) -> Dict[int, CellValue]:
        """Coerce ``{attribute name: raw value}`` into id-keyed cells.

        Unknown attribute names are registered on the fly with the type
        inferred from the value; NDF/None entries are dropped.
        """
        cells: Dict[int, CellValue] = {}
        for name, raw in values.items():
            value = coerce_value(raw)
            if is_ndf(value):
                continue
            attr = self.catalog.register_for_value(name, value)
            self._check_type(attr, value)
            cells[attr.attr_id] = value
        if not cells:
            raise SchemaError("a tuple must define at least one attribute")
        return cells

    def insert(self, values: Mapping[str, object]) -> int:
        """Insert a tuple given ``{attribute name: raw value}``; returns tid."""
        return self.insert_record(self.prepare_cells(values))

    def insert_record(self, cells: Dict[int, CellValue]) -> int:
        """Insert pre-coerced cells keyed by attribute id; returns tid."""
        self._persist_new_attributes()
        tid = self._next_tid
        self._next_tid += 1
        record = Record(tid=tid, cells=dict(cells))
        payload = encode_record(record)
        offset = self.disk.append(self.file_name, payload)
        self._directory[tid] = (offset, len(payload))
        self._account_insert(record)
        return tid

    # ----------------------------------------------------------------- reads

    def read(self, tid: int) -> Record:
        """Random-access read of one tuple (the refine step's table access)."""
        location = self._directory.get(tid)
        if location is None or tid in self._tombstones:
            raise StorageError(f"no live tuple with tid {tid}")
        offset, length = location
        payload = self.disk.read(self.file_name, offset, length)
        record, _ = decode_record(payload)
        return record

    def locate(self, tid: int) -> Tuple[int, int]:
        """(offset, length) of a live tuple's row in the table file."""
        location = self._directory.get(tid)
        if location is None or tid in self._tombstones:
            raise StorageError(f"no live tuple with tid {tid}")
        return location

    def scan(self) -> Iterator[Record]:
        """Sequential scan of live tuples in file order (DST's access path)."""
        reader = BufferedReader(self.disk, self.file_name, 0)
        while not reader.exhausted():
            header = reader.read(4)
            total = int.from_bytes(header, "little")
            if total < 4:
                raise StorageError("corrupt row during scan")
            body = reader.read(total - 4)
            record, _ = decode_record(header + body)
            if record.tid not in self._tombstones:
                yield record

    def value(self, tid: int, name: str) -> CellValue:
        """Convenience: a single cell by attribute name."""
        attr = self.catalog.require(name)
        return self.read(tid).value(attr.attr_id)

    # --------------------------------------------------------------- updates

    def delete(self, tid: int) -> None:
        """Tombstone a tuple; the row stays in the file until rebuild."""
        if not self.is_live(tid):
            raise StorageError(f"no live tuple with tid {tid}")
        record = self.read(tid)
        self._tombstones.add(tid)
        self.disk.append(self.tombstone_file, tid.to_bytes(4, "little"))
        self._account_delete(record)

    def update(self, tid: int, values: Mapping[str, object]) -> int:
        """Paper's update: delete the old tuple, insert anew; returns new tid."""
        self.delete(tid)
        return self.insert(values)

    def rebuild(self) -> None:
        """Compact the table file, dropping tombstoned rows (Sec. IV-B)."""
        tmp_name = f"{self.file_name}.rebuild"
        self.disk.create(tmp_name, overwrite=True)
        new_directory: Dict[int, Tuple[int, int]] = {}
        for record in self.scan():
            payload = encode_record(record)
            offset = self.disk.append(tmp_name, payload)
            new_directory[record.tid] = (offset, len(payload))
        self.disk.rename(tmp_name, self.file_name)
        self._directory = new_directory
        self._tombstones = set()
        self.disk.create(self.tombstone_file, overwrite=True)
        logger.info(
            "compacted table %r: %d live tuples, %d bytes",
            self.name,
            len(new_directory),
            self.file_bytes,
        )

    # ----------------------------------------------------------- durability

    def _persist_new_attributes(self) -> None:
        """Append attribute registrations to the on-disk catalog file.

        Entries: ``u16 name_length, utf-8 name, u8 kind`` in id order, so
        :meth:`attach` can rebuild the catalog positionally.
        """
        while self._persisted_attrs < len(self.catalog):
            attr = self.catalog.by_id(self._persisted_attrs)
            raw = attr.name.encode("utf-8")
            payload = (
                len(raw).to_bytes(2, "little")
                + raw
                + bytes([1 if attr.is_text else 0])
            )
            self.disk.append(self.catalog_file, payload)
            self._persisted_attrs += 1

    @classmethod
    def attach(
        cls, disk: StorageBackend, name: str = "table"
    ) -> "SparseWideTable":
        """Re-open a table from its on-disk files (catalog, rows, tombstones).

        Rebuilds the in-memory state — catalog, tid directory, statistics,
        next tid — by reading what :class:`SparseWideTable` persisted, so a
        table survives process restarts of the simulated environment.
        """
        from repro.model.schema import AttributeType
        from repro.storage.pager import BufferedReader

        table = cls.__new__(cls)
        table.disk = disk
        table.name = name
        table.file_name = f"{name}.dat"
        table.catalog_file = f"{name}.catalog"
        table.tombstone_file = f"{name}.tombstones"
        for file_name in (table.file_name, table.catalog_file, table.tombstone_file):
            if not disk.exists(file_name):
                raise StorageError(f"cannot attach: missing file {file_name!r}")

        catalog = Catalog()
        reader = BufferedReader(disk, table.catalog_file, 0)
        while not reader.exhausted():
            name_len = int.from_bytes(reader.read(2), "little")
            attr_name = reader.read(name_len).decode("utf-8")
            kind = AttributeType.TEXT if reader.read(1)[0] else AttributeType.NUMERIC
            catalog.register(attr_name, kind)
        table.catalog = catalog
        table._persisted_attrs = len(catalog)

        tombstones: Set[int] = set()
        reader = BufferedReader(disk, table.tombstone_file, 0)
        while not reader.exhausted():
            tombstones.add(int.from_bytes(reader.read(4), "little"))
        table._tombstones = tombstones

        table.stats = TableStats()
        table._directory = {}
        table._next_tid = 0
        reader = BufferedReader(disk, table.file_name, 0)
        while not reader.exhausted():
            offset = reader.position
            header = reader.read(4)
            total = int.from_bytes(header, "little")
            if total < 4:
                raise StorageError("corrupt row during attach")
            body = reader.read(total - 4)
            record, _ = decode_record(header + body)
            table._directory[record.tid] = (offset, total)
            table._next_tid = max(table._next_tid, record.tid + 1)
            if record.tid not in tombstones:
                table._account_insert(record)
        return table

    # ------------------------------------------------------------ statistics

    def _check_type(self, attr: AttributeDef, value: CellValue) -> None:
        if attr.is_numeric and not is_numeric_value(value):
            raise SchemaError(f"attribute {attr.name!r} expects a numeric value")
        if attr.is_text and not is_text_value(value):
            raise SchemaError(f"attribute {attr.name!r} expects a text value")

    def _account_insert(self, record: Record) -> None:
        self.stats.live_tuples += 1
        for attr_id, value in record.cells.items():
            stats = self.stats.attr(attr_id)
            stats.df += 1
            if is_text_value(value):
                stats.str_count += len(value)
            elif is_numeric_value(value):
                stats.observe_numeric(value)

    def _account_delete(self, record: Record) -> None:
        self.stats.live_tuples -= 1
        for attr_id, value in record.cells.items():
            stats = self.stats.attr(attr_id)
            stats.df -= 1
            if is_text_value(value):
                stats.str_count -= len(value)
            # Numeric min/max are kept conservative (never shrink on delete):
            # the relative domain may only widen, which preserves lower
            # bounds; rebuilding an index re-derives the tight domain.
