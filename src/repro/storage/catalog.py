"""Attribute catalog: names → stable ids and types.

The SWT is schema-free for users; the catalog grows as tuples arrive.  The
attribute id doubles as the attribute's position in the iVA-file's attribute
list (the paper's positional mapping, Sec. III-D: "Since attributes are
rarely deleted, we eliminate the attribute id in the element, and adopt the
positional way").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import SchemaError
from repro.model.schema import AttributeDef, AttributeType
from repro.model.values import CellValue, is_numeric_value, is_text_value


class Catalog:
    """Registry of the table's attributes."""

    def __init__(self) -> None:
        self._by_name: Dict[str, AttributeDef] = {}
        self._by_id: List[AttributeDef] = []

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[AttributeDef]:
        return iter(self._by_id)

    def get(self, name: str) -> Optional[AttributeDef]:
        """Look up by name; None when absent."""
        return self._by_name.get(name)

    def require(self, name: str) -> AttributeDef:
        """Look up by name; raises SchemaError when absent."""
        attr = self._by_name.get(name)
        if attr is None:
            raise SchemaError(f"unknown attribute: {name!r}")
        return attr

    def by_id(self, attr_id: int) -> AttributeDef:
        """Look up by attribute id; raises SchemaError when absent."""
        if 0 <= attr_id < len(self._by_id):
            return self._by_id[attr_id]
        raise SchemaError(f"unknown attribute id: {attr_id}")

    def register(self, name: str, kind: AttributeType) -> AttributeDef:
        """Register an attribute, or return it if already registered.

        Registering an existing name with a different type is a
        :class:`SchemaError` — the table does not support heterogeneous
        attributes.
        """
        existing = self._by_name.get(name)
        if existing is not None:
            if existing.kind is not kind:
                raise SchemaError(
                    f"attribute {name!r} is {existing.kind.value}, "
                    f"cannot store a {kind.value} value in it"
                )
            return existing
        attr = AttributeDef(attr_id=len(self._by_id), name=name, kind=kind)
        self._by_name[name] = attr
        self._by_id.append(attr)
        return attr

    def register_for_value(self, name: str, value: CellValue) -> AttributeDef:
        """Register an attribute with the type inferred from *value*."""
        if is_numeric_value(value):
            return self.register(name, AttributeType.NUMERIC)
        if is_text_value(value):
            return self.register(name, AttributeType.TEXT)
        raise SchemaError(
            f"cannot infer attribute type for {name!r} from value {value!r}"
        )

    def text_attributes(self) -> List[AttributeDef]:
        """All text attributes in id order."""
        return [a for a in self._by_id if a.is_text]

    def numeric_attributes(self) -> List[AttributeDef]:
        """All numeric attributes in id order."""
        return [a for a in self._by_id if a.is_numeric]
