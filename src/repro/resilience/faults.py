"""Deterministic fault injection for any storage backend.

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultRule`\\ s; a :class:`FaultInjectingBackend` consults the plan
on every operation.  Whether a fault fires at a given *site* — the
``(rule, operation, file, offset, length)`` tuple — is a pure hash of
the plan seed and the site, never a draw from shared RNG state, so a
chaos run is bit-reproducible no matter how the executor's threads
interleave, and a plan dumped to JSON replays exactly.

Fault kinds:

``read_error``
    The read raises.  *Transient* errors raise
    :class:`~repro.errors.TransientIOError` and clear after ``attempts``
    hits of the same site (a retry sees clean data); *persistent* errors
    raise :class:`~repro.errors.StorageError` every time.
``bit_flip``
    One deterministic bit of the returned data is inverted.  Transient
    flips clear after ``attempts`` hits; persistent flips model media
    corruption.
``torn_write``
    A ``write``/``append`` silently persists only a prefix of the
    payload — the classic power-cut tear the checksum layer exists to
    catch.
``latency``
    The modeled I/O clock (``stats.io_time_ms``) is charged an extra
    ``latency_ms`` spike.

Beyond per-operation faults, a plan can carry :class:`KillPoint`\\ s —
named code sites at which the *whole process* "dies" on the Nth hit
(:meth:`FaultPlan.maybe_kill` raises
:class:`~repro.errors.SimulatedCrash`).  The crash-recovery harness
(``repro bench crash-sweep``) uses these to kill the serving write path
mid-append, mid-fsync, or mid-compaction-swap and then prove recovery
from the surviving durable bytes.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import SimulatedCrash, StorageError, TransientIOError
from repro.obs.metrics import get_registry
from repro.resilience._delegate import DelegatingBackend

FAULT_KINDS = ("read_error", "bit_flip", "torn_write", "latency")


def _site_hash(*parts) -> int:
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big")


@dataclass(frozen=True)
class FaultRule:
    """One class of injected fault, targeted by file and offset window."""

    kind: str
    rate: float
    #: Substring patterns; a file matches when any pattern occurs in its
    #: name.  Empty means every file.
    files: Tuple[str, ...] = ()
    #: Transient faults clear after ``attempts`` hits per site.
    transient: bool = True
    attempts: int = 1
    #: Half-open byte window the accessed range must intersect.
    offset_lo: int = 0
    offset_hi: Optional[int] = None
    latency_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise StorageError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise StorageError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.attempts < 1:
            raise StorageError(f"attempts must be >= 1, got {self.attempts}")

    def matches(self, name: str, offset: int, length: int) -> bool:
        if self.files and not any(pattern in name for pattern in self.files):
            return False
        if self.offset_hi is not None and offset >= self.offset_hi:
            return False
        return offset + max(length, 1) > self.offset_lo

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "files": list(self.files),
            "transient": self.transient,
            "attempts": self.attempts,
            "offset_lo": self.offset_lo,
            "offset_hi": self.offset_hi,
            "latency_ms": self.latency_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            kind=data["kind"],
            rate=data["rate"],
            files=tuple(data.get("files", ())),
            transient=data.get("transient", True),
            attempts=data.get("attempts", 1),
            offset_lo=data.get("offset_lo", 0),
            offset_hi=data.get("offset_hi"),
            latency_ms=data.get("latency_ms", 5.0),
        )


@dataclass(frozen=True)
class KillPoint:
    """Die at the named code *site* on its ``hit``-th traversal.

    ``site`` is a dotted label baked into the code path (e.g.
    ``journal.append``, ``commit.post_journal``, ``compact.swap``).
    ``torn_bytes`` only matters at sites that persist a payload before
    dying: it caps how many bytes of the in-flight frame reach "disk"
    before the crash, modeling a torn write (``None`` means the site's
    default tear).
    """

    site: str
    hit: int = 1
    torn_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise StorageError("kill point site must be non-empty")
        if self.hit < 1:
            raise StorageError(f"kill point hit must be >= 1, got {self.hit}")

    def to_dict(self) -> dict:
        return {"site": self.site, "hit": self.hit, "torn_bytes": self.torn_bytes}

    @classmethod
    def from_dict(cls, data: dict) -> "KillPoint":
        return cls(
            site=data["site"],
            hit=data.get("hit", 1),
            torn_bytes=data.get("torn_bytes"),
        )


@dataclass
class FaultPlan:
    """A seeded, armable set of fault rules — the whole chaos scenario."""

    seed: int
    rules: Tuple[FaultRule, ...] = ()
    armed: bool = False
    kill_points: Tuple[KillPoint, ...] = ()

    def __post_init__(self) -> None:
        self.rules = tuple(self.rules)
        self.kill_points = tuple(self.kill_points)
        self._kill_hits: Dict[str, int] = {}
        self._kill_lock = threading.Lock()

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def with_rules(self, *rules: FaultRule) -> "FaultPlan":
        return replace(self, rules=tuple(rules))

    def with_kill_points(self, *points: KillPoint) -> "FaultPlan":
        return replace(self, kill_points=tuple(points))

    # --------------------------------------------------- kill points

    def reached(self, site: str) -> Optional[KillPoint]:
        """Record one traversal of *site*; the kill point due now, if any.

        Hit counting happens even when no kill point targets the site,
        so a plan re-armed mid-run still counts deterministically.
        Disarmed plans neither count nor kill.
        """
        if not self.armed:
            return None
        with self._kill_lock:
            hits = self._kill_hits.get(site, 0) + 1
            self._kill_hits[site] = hits
        for point in self.kill_points:
            if point.site == site and point.hit == hits:
                return point
        return None

    def maybe_kill(self, site: str) -> None:
        """Raise :class:`SimulatedCrash` when a kill point is due at *site*."""
        point = self.reached(site)
        if point is not None:
            raise SimulatedCrash(
                f"simulated crash at kill point {site!r} (hit {point.hit})"
            )

    # -------------------------------------------------------- replay

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules],
                "kill_points": [point.to_dict() for point in self.kill_points],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            seed=data["seed"],
            rules=tuple(FaultRule.from_dict(r) for r in data.get("rules", ())),
            kill_points=tuple(
                KillPoint.from_dict(p) for p in data.get("kill_points", ())
            ),
        )

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())


class FaultInjectingBackend(DelegatingBackend):
    """Inject the plan's faults into an inner backend's operations."""

    def __init__(self, inner, plan: FaultPlan, *, registry=None) -> None:
        super().__init__(inner)
        self.plan = plan
        self._hits: Dict[Tuple, int] = {}
        self._lock = threading.Lock()
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._registry = registry or get_registry()

    def reset(self) -> None:
        """Forget per-site transient-attempt history and counts."""
        with self._lock:
            self._hits.clear()
            self.injected = {kind: 0 for kind in FAULT_KINDS}

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    def _count(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] += 1
        self._registry.counter(
            "repro_faults_injected_total",
            labels={"kind": kind},
            help="Faults the chaos plan injected into storage operations.",
        ).inc()

    def _fires(self, index: int, rule: FaultRule, site: Tuple) -> bool:
        """Pure per-site decision + transient attempt bookkeeping."""
        if rule.rate <= 0.0:
            return False
        draw = _site_hash(self.plan.seed, index, "fire", *site) & 0xFFFFFFFF
        if draw / 2**32 >= rule.rate:
            return False
        if not rule.transient:
            return True
        key = (index, *site)
        with self._lock:
            hits = self._hits.get(key, 0)
            self._hits[key] = hits + 1
        return hits < rule.attempts

    def _matching(self, kind: str, name: str, offset: int, length: int):
        for index, rule in enumerate(self.plan.rules):
            if rule.kind != kind:
                continue
            if rule.matches(name, offset, length) and self._fires(
                index, rule, (kind, name, offset, length)
            ):
                yield index, rule

    # ------------------------------------------------------------- I/O

    def read(self, name: str, offset: int, length: int) -> bytes:
        if not self.plan.armed:
            return self.inner.read(name, offset, length)
        for _, rule in self._matching("latency", name, offset, length):
            self._count("latency")
            self.inner.stats.io_time_ms += rule.latency_ms
        for _, rule in self._matching("read_error", name, offset, length):
            self._count("read_error")
            detail = f"injected read fault on {name!r} at offset {offset}"
            if rule.transient:
                raise TransientIOError(detail)
            raise StorageError(detail)
        data = self.inner.read(name, offset, length)
        flips = list(self._matching("bit_flip", name, offset, length))
        if flips and length > 0:
            corrupted = bytearray(data)
            for index, _ in flips:
                self._count("bit_flip")
                bit = _site_hash(
                    self.plan.seed, index, "bit", name, offset, length
                ) % (len(corrupted) * 8)
                corrupted[bit // 8] ^= 1 << (bit % 8)
            data = bytes(corrupted)
        return data

    def write(self, name: str, offset: int, payload: bytes) -> None:
        if self.plan.armed and payload:
            for index, _ in self._matching("torn_write", name, offset, len(payload)):
                self._count("torn_write")
                cut = _site_hash(
                    self.plan.seed, index, "cut", "write", name, offset, len(payload)
                ) % len(payload)
                self.inner.write(name, offset, payload[:cut])
                return
        self.inner.write(name, offset, payload)

    def append(self, name: str, payload: bytes) -> int:
        if self.plan.armed and payload:
            offset = self.inner.size(name) if self.inner.exists(name) else 0
            for index, _ in self._matching("torn_write", name, offset, len(payload)):
                self._count("torn_write")
                cut = _site_hash(
                    self.plan.seed, index, "cut", "append", name, offset, len(payload)
                ) % len(payload)
                return self.inner.append(name, payload[:cut])
        return self.inner.append(name, payload)
