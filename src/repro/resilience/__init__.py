"""Resilience layer: fault injection, checksummed frames, retries.

Community systems run on fallible hardware; the iVA-file's guarantees
(paper §III-B/III-C) assume uncorrupted vectors.  This package supplies
the standard wide-table-store reliability stack as composable
:class:`~repro.storage.backend.StorageBackend` wrappers:

* :class:`FaultInjectingBackend` + :class:`FaultPlan` — seeded,
  deterministic chaos (see ``docs/resilience.md`` for the plan format);
* :class:`ChecksummedBackend` — CRC32C frame verification on every read,
  with per-file ``.crc`` sidecars;
* :class:`ResilientBackend` + :class:`RetryPolicy` — bounded retries
  with backoff for transient faults.

The canonical composition (retry outermost, faults innermost, so a
retry re-reads *through* the verifying layer)::

    backend = resilient_stack(simulated_backend(), plan=plan)

Shard-level degradation (``fail_mode="degrade"``) lives in
:mod:`repro.parallel.executor`; quarantine-and-rebuild repair in
:mod:`repro.storage.fsck`.
"""

from repro.resilience._delegate import DelegatingBackend
from repro.resilience.checksum import (
    FRAME_BYTES,
    SIDECAR_SUFFIX,
    ChecksummedBackend,
    crc32c,
    is_sidecar,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjectingBackend,
    FaultPlan,
    FaultRule,
    KillPoint,
)
from repro.resilience.retry import ResilientBackend, RetryPolicy

__all__ = [
    "DelegatingBackend",
    "ChecksummedBackend",
    "FaultInjectingBackend",
    "FaultPlan",
    "FaultRule",
    "KillPoint",
    "ResilientBackend",
    "RetryPolicy",
    "crc32c",
    "is_sidecar",
    "resilient_stack",
    "FAULT_KINDS",
    "FRAME_BYTES",
    "SIDECAR_SUFFIX",
]


def resilient_stack(
    inner,
    *,
    plan: FaultPlan = None,
    checksums: bool = True,
    policy: RetryPolicy = None,
    registry=None,
):
    """Compose the standard wrapper stack over *inner*.

    Order matters: faults sit closest to the device (they model it),
    checksums verify what comes up from below, and the retry layer
    re-drives the whole verified read on a retryable failure.
    """
    backend = inner
    if plan is not None:
        backend = FaultInjectingBackend(backend, plan, registry=registry)
    if checksums:
        backend = ChecksummedBackend(backend, registry=registry)
    return ResilientBackend(backend, policy, registry=registry)
