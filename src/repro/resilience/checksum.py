"""CRC32C-checksummed frames over any storage backend.

The iVA-file's no-false-negative guarantees (paper §III-B/III-C) only
hold over *uncorrupted* vectors — a flipped bit in a signature silently
widens or narrows a lower bound and the top-k answer is wrong with no
error anywhere.  This module closes that hole at the layer both the
scalar and block (``move_block``) scan paths already share: every decode
funnels through ``BufferedReader`` → ``backend.read``, so verifying
frames inside ``read()`` covers the vector lists, the tuple list, and
the attribute list for *both* codec families without touching any wire
format offsets.

Wire format (version 1): each data file ``f`` gains a sidecar
``f + ".crc"`` on the same backend::

    magic   7 bytes  b"IVACRC\\0"
    version u8       1
    frame   u32 LE   frame size in bytes (4096)
    crcs    u32 LE   one CRC32C (Castagnoli) per frame; the final
                     partial frame's CRC covers only the bytes present

A file without a sidecar is *legacy*: reads pass through unverified
(read-back compatibility for snapshots taken before this layer existed)
and the file is adopted — sidecar computed from current content — on its
first write through the wrapper.  Sidecars are ordinary backend files,
so disk snapshots (:mod:`repro.storage.snapshot`) carry them for free.

CRCs are always computed from the *intended* payload (the in-memory tail
of the last frame is authoritative), never from read-back after a write
— which is what makes torn writes underneath this layer detectable.
The one deliberate exception is ``truncate``, which re-blesses the cut
frame from read-back; truncation only happens in tests and repair.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.errors import ChecksumError, StorageError
from repro.obs.metrics import get_registry
from repro.resilience._delegate import DelegatingBackend

#: Bytes covered by one CRC frame.
FRAME_BYTES = 4096
#: Suffix of the per-file checksum sidecar.
SIDECAR_SUFFIX = ".crc"

_MAGIC = b"IVACRC\x00"
_VERSION = 1
_HEADER = struct.Struct("<7sBI")
_CRC = struct.Struct("<I")


# ------------------------------------------------------------------ crc32c


def _make_table() -> List[int]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ 0x82F63B78 if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _make_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C (Castagnoli) — the polynomial storage systems checksum with.

    ``zlib.crc32`` implements the IEEE polynomial, so this is a
    table-driven pure-Python implementation (check value:
    ``crc32c(b"123456789") == 0xE3069283``).
    """
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


# ------------------------------------------------------------------ backend


def is_sidecar(name: str) -> bool:
    return name.endswith(SIDECAR_SUFFIX)


class ChecksummedBackend(DelegatingBackend):
    """Verify CRC32C frames on every read; maintain sidecars on write.

    The in-memory CRC list and tail-frame bytes are authoritative: they
    are loaded once from existing sidecars at construction and owned by
    this wrapper afterwards, so corruption injected *below* (a fault
    layer or a real bad disk) cannot re-bless itself through the sidecar.
    """

    def __init__(self, inner, *, frame_bytes: int = FRAME_BYTES, registry=None) -> None:
        super().__init__(inner)
        if frame_bytes <= 0:
            raise StorageError(f"frame_bytes must be positive, got {frame_bytes}")
        self.frame_bytes = frame_bytes
        self._frames: Dict[str, List[int]] = {}
        #: Intended bytes of the final partial frame; ``None`` marks a
        #: tail that failed verification at load (appends refuse until
        #: the file is rebuilt).
        self._tails: Dict[str, Optional[bytearray]] = {}
        self._sizes: Dict[str, int] = {}
        self._failures = (registry or get_registry()).counter(
            "repro_checksum_failures_total",
            help="Frame reads whose CRC32C disagreed with the sidecar.",
        )
        self._load_existing()

    # ------------------------------------------------------------ state

    def _load_existing(self) -> None:
        for name in self.inner.list_files():
            if is_sidecar(name) or not self.inner.exists(name + SIDECAR_SUFFIX):
                continue
            self._load_sidecar(name)

    def _load_sidecar(self, name: str) -> None:
        sidecar = name + SIDECAR_SUFFIX
        raw = self.inner.read(sidecar, 0, self.inner.size(sidecar))
        if len(raw) < _HEADER.size:
            raise ChecksumError(f"checksum sidecar {sidecar!r} is too short")
        magic, version, frame_bytes = _HEADER.unpack_from(raw)
        if magic != _MAGIC:
            raise ChecksumError(f"checksum sidecar {sidecar!r} has a bad magic")
        if version != _VERSION:
            raise ChecksumError(
                f"checksum sidecar {sidecar!r} is version {version}, "
                f"this build reads version {_VERSION}"
            )
        if frame_bytes != self.frame_bytes:
            raise ChecksumError(
                f"checksum sidecar {sidecar!r} uses {frame_bytes}-byte frames, "
                f"expected {self.frame_bytes}"
            )
        body = raw[_HEADER.size :]
        frames = [_CRC.unpack_from(body, i)[0] for i in range(0, len(body), _CRC.size)]
        size = self.inner.size(name)
        self._frames[name] = frames
        self._sizes[name] = size
        rest = size % self.frame_bytes
        tail: Optional[bytearray] = bytearray()
        if rest:
            content = self.inner.read(name, size - rest, rest)
            if frames and crc32c(content) == frames[-1]:
                tail = bytearray(content)
            else:
                # Poisoned tail (e.g. a torn final append): reads keep
                # failing against the recorded CRC; appends refuse.
                tail = None
        self._tails[name] = tail

    def _store_frame(self, name: str, idx: int, crc: int) -> None:
        frames = self._frames[name]
        sidecar = name + SIDECAR_SUFFIX
        packed = _CRC.pack(crc)
        if idx == len(frames):
            frames.append(crc)
            self.inner.append(sidecar, packed)
        elif idx < len(frames):
            frames[idx] = crc
            self.inner.write(sidecar, _HEADER.size + idx * _CRC.size, packed)
        else:  # pragma: no cover - frames always grow contiguously
            raise StorageError(f"frame {idx} of {name!r} stored out of order")

    def _rewrite_sidecar(self, name: str) -> None:
        sidecar = name + SIDECAR_SUFFIX
        self.inner.create(sidecar, overwrite=True)
        body = b"".join(_CRC.pack(c) for c in self._frames[name])
        self.inner.append(
            sidecar, _HEADER.pack(_MAGIC, _VERSION, self.frame_bytes) + body
        )

    def _adopt(self, name: str) -> None:
        """Start checksumming a legacy file from its current content."""
        size = self.inner.size(name)
        content = self.inner.read(name, 0, size) if size else b""
        frame = self.frame_bytes
        self._frames[name] = [
            crc32c(content[i : i + frame]) for i in range(0, size, frame)
        ]
        self._sizes[name] = size
        rest = size % frame
        self._tails[name] = bytearray(content[size - rest :]) if rest else bytearray()
        self._rewrite_sidecar(name)

    def tracked(self, name: str) -> bool:
        """True when *name* has frame checksums (not a legacy file)."""
        return name in self._frames

    # ------------------------------------------------------- lifecycle

    def create(self, name: str, *, overwrite: bool = False) -> None:
        self.inner.create(name, overwrite=overwrite)
        if is_sidecar(name):
            return
        self._frames[name] = []
        self._tails[name] = bytearray()
        self._sizes[name] = 0
        sidecar = name + SIDECAR_SUFFIX
        self.inner.create(sidecar, overwrite=True)
        self.inner.append(sidecar, _HEADER.pack(_MAGIC, _VERSION, self.frame_bytes))

    def delete(self, name: str) -> None:
        self.inner.delete(name)
        if name in self._frames:
            del self._frames[name], self._tails[name], self._sizes[name]
            if self.inner.exists(name + SIDECAR_SUFFIX):
                self.inner.delete(name + SIDECAR_SUFFIX)

    def rename(self, old: str, new: str) -> None:
        self.inner.rename(old, new)
        if new in self._frames and old not in self._frames:
            # Renaming a legacy file over a tracked one: the stale
            # sidecar no longer describes the content.
            del self._frames[new], self._tails[new], self._sizes[new]
            if self.inner.exists(new + SIDECAR_SUFFIX):
                self.inner.delete(new + SIDECAR_SUFFIX)
        if old in self._frames:
            self._frames[new] = self._frames.pop(old)
            self._tails[new] = self._tails.pop(old)
            self._sizes[new] = self._sizes.pop(old)
            self.inner.rename(old + SIDECAR_SUFFIX, new + SIDECAR_SUFFIX)

    def truncate(self, name: str, size: int) -> None:
        self.inner.truncate(name, size)
        if name not in self._frames:
            return
        frame = self.frame_bytes
        count = -(-size // frame)  # ceil
        del self._frames[name][count:]
        self._sizes[name] = size
        rest = size % frame
        if rest:
            # Deliberate re-bless from read-back: the cut frame's old CRC
            # covered bytes that no longer exist.
            content = self.inner.read(name, size - rest, rest)
            self._frames[name][count - 1] = crc32c(bytes(content))
            self._tails[name] = bytearray(content)
        else:
            self._tails[name] = bytearray()
        self._rewrite_sidecar(name)

    # ------------------------------------------------------------- I/O

    def read(self, name: str, offset: int, length: int) -> bytes:
        frames = self._frames.get(name)
        if frames is None or length <= 0:
            return self.inner.read(name, offset, length)
        size = self._sizes[name]
        if offset < 0 or offset + length > size:
            return self.inner.read(name, offset, length)  # let inner raise
        frame = self.frame_bytes
        first = offset // frame
        last = (offset + length - 1) // frame
        astart = first * frame
        aend = min((last + 1) * frame, size)
        blob = self.inner.read(name, astart, aend - astart)
        for idx in range(first, last + 1):
            lo = idx * frame - astart
            piece = blob[lo : lo + frame]
            if idx >= len(frames) or crc32c(piece) != frames[idx]:
                self._failures.inc()
                raise ChecksumError(
                    f"checksum mismatch in {name!r}: frame {idx} "
                    f"(bytes {astart + lo}..{astart + lo + len(piece)})"
                )
        return blob[offset - astart : offset - astart + length]

    def append(self, name: str, payload: bytes) -> int:
        if is_sidecar(name):
            return self.inner.append(name, payload)
        if name not in self._frames:
            if not self.inner.exists(name):
                raise StorageError(f"cannot append to unknown file {name!r}")
            self._adopt(name)
        tail = self._tails[name]
        if tail is None:
            raise ChecksumError(
                f"cannot extend {name!r}: its final frame failed verification"
            )
        offset = self.inner.append(name, payload)
        frame = self.frame_bytes
        full = len(self._frames[name]) - (1 if tail else 0)
        buf = bytes(tail) + payload
        pos, idx = 0, full
        while len(buf) - pos >= frame:
            self._store_frame(name, idx, crc32c(buf[pos : pos + frame]))
            pos += frame
            idx += 1
        rest = buf[pos:]
        if rest:
            self._store_frame(name, idx, crc32c(rest))
        self._tails[name] = bytearray(rest)
        self._sizes[name] += len(payload)
        return offset

    def write(self, name: str, offset: int, payload: bytes) -> None:
        if is_sidecar(name):
            self.inner.write(name, offset, payload)
            return
        if name not in self._frames:
            if not self.inner.exists(name):
                raise StorageError(f"cannot write to unknown file {name!r}")
            self._adopt(name)
        if not payload:
            self.inner.write(name, offset, payload)
            return
        size = self._sizes[name]
        new_size = max(size, offset + len(payload))
        frame = self.frame_bytes
        first = offset // frame
        last = (offset + len(payload) - 1) // frame
        # Capture (and verify) the affected frames' intended pre-images
        # before the inner write replaces them.
        pre_images = {
            idx: self._frame_pre_image(name, idx, size)
            for idx in range(first, last + 1)
        }
        self.inner.write(name, offset, payload)  # raises on holes
        for idx in range(first, last + 1):
            fstart = idx * frame
            content = bytearray(pre_images[idx])
            lo = max(offset, fstart)
            hi = min(offset + len(payload), fstart + frame)
            rel = lo - fstart
            if len(content) < rel:  # pragma: no cover - inner rejects holes
                raise StorageError(f"write to {name!r} left a hole at {lo}")
            content[rel : rel + (hi - lo)] = payload[lo - offset : hi - offset]
            self._store_frame(name, idx, crc32c(bytes(content)))
            if fstart + len(content) >= new_size and len(content) < frame:
                self._tails[name] = content
        if new_size % frame == 0:
            self._tails[name] = bytearray()
        self._sizes[name] = new_size

    def _frame_pre_image(self, name: str, idx: int, size: int) -> bytes:
        """Intended content of frame *idx* before an in-place write."""
        frames = self._frames[name]
        frame = self.frame_bytes
        fstart = idx * frame
        if fstart >= size or idx >= len(frames):
            return b""
        tail = self._tails[name]
        if fstart + frame > size:  # the partial tail frame
            if tail is None:
                raise ChecksumError(
                    f"cannot overwrite {name!r}: its final frame failed "
                    f"verification"
                )
            return bytes(tail)
        content = self.inner.read(name, fstart, frame)
        if crc32c(content) != frames[idx]:
            # Refuse to splice into a corrupt frame — recomputing its CRC
            # here would silently bless the corruption.
            self._failures.inc()
            raise ChecksumError(
                f"checksum mismatch in {name!r}: frame {idx} "
                f"(bytes {fstart}..{fstart + len(content)})"
            )
        return content

    # ------------------------------------------------------------ fsck

    def verify_file(self, name: str) -> List[str]:
        """Re-read *name* end to end; return problem strings (fsck hook)."""
        frames = self._frames.get(name)
        if frames is None:
            return []
        problems = []
        size = self.inner.size(name)
        frame = self.frame_bytes
        expected = -(-size // frame)
        if self._sizes[name] != size:
            problems.append(
                f"file is {size} bytes on disk, checksummed length is "
                f"{self._sizes[name]}"
            )
        if len(frames) != expected:
            problems.append(
                f"sidecar records {len(frames)} frames, file has {expected}"
            )
        for idx in range(min(len(frames), expected)):
            lo = idx * frame
            content = self.inner.read(name, lo, min(frame, size - lo))
            if crc32c(content) != frames[idx]:
                self._failures.inc()
                problems.append(
                    f"CRC32C mismatch in frame {idx} "
                    f"(bytes {lo}..{lo + len(content)})"
                )
        return problems
