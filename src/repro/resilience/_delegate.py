"""Shared delegating base for resilience backend wrappers.

Every wrapper in this package (fault injection, checksum verification,
retry) decorates an inner :class:`~repro.storage.backend.StorageBackend`
and must keep presenting the *whole* protocol surface — engines reach
through ``disk.stats`` / ``disk.metered()`` / ``disk.publish_metrics``
just as they do on a bare disk.  :class:`DelegatingBackend` forwards the
full surface so subclasses override only the operations they shape.
"""

from __future__ import annotations

from typing import List


class DelegatingBackend:
    """Forwards the complete ``StorageBackend`` protocol to ``inner``."""

    #: Zero-copy reads are an *optional* backend capability discovered by
    #: duck-typed probe (``BufferedReader``).  Wrappers must not let the
    #: probe tunnel through ``__getattr__`` to the inner backend — a
    #: checksummed or fault-injected stack would be silently bypassed.
    #: Pinned to None here; a wrapper that can legitimately pass views
    #: through (none today) would override it explicitly.
    read_view = None

    def __init__(self, inner) -> None:
        self.inner = inner

    # ------------------------------------------------------- attributes

    @property
    def params(self):
        return self.inner.params

    @property
    def stats(self):
        return self.inner.stats

    @property
    def cache(self):
        return self.inner.cache

    @property
    def tracer(self):
        return self.inner.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.inner.tracer = value

    # ------------------------------------------------------- lifecycle

    def create(self, name: str, *, overwrite: bool = False) -> None:
        self.inner.create(name, overwrite=overwrite)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def size(self, name: str) -> int:
        return self.inner.size(name)

    def list_files(self) -> List[str]:
        return self.inner.list_files()

    def total_bytes(self) -> int:
        return self.inner.total_bytes()

    # ------------------------------------------------------------- I/O

    def read(self, name: str, offset: int, length: int) -> bytes:
        return self.inner.read(name, offset, length)

    def write(self, name: str, offset: int, payload: bytes) -> None:
        self.inner.write(name, offset, payload)

    def append(self, name: str, payload: bytes) -> int:
        return self.inner.append(name, payload)

    def truncate(self, name: str, size: int) -> None:
        self.inner.truncate(name, size)

    def rename(self, old: str, new: str) -> None:
        self.inner.rename(old, new)

    def sync(self, name: str) -> None:
        self.inner.sync(name)

    # ----------------------------------------------------------- cache

    def warm_file(self, name: str) -> None:
        self.inner.warm_file(name)

    def drop_cache(self) -> None:
        self.inner.drop_cache()

    # ------------------------------------------------------- telemetry

    def reset_stats(self) -> None:
        self.inner.reset_stats()

    def metered(self):
        return self.inner.metered()

    def io_channel(self, name: str):
        return self.inner.io_channel(name)

    def accounting_scope(self, stats=None):
        return self.inner.accounting_scope(stats)

    def publish_metrics(self, registry=None, label: str = "disk0") -> None:
        self.inner.publish_metrics(registry, label=label)

    # Anything outside the protocol (e.g. ``verify_file`` on a nested
    # ChecksummedBackend) stays reachable through the stack.
    def __getattr__(self, item: str):
        return getattr(self.inner, item)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.inner!r})"
