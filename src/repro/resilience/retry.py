"""Bounded, deterministic retries at the backend read path.

:class:`ResilientBackend` re-issues reads that fail with a *retryable*
error — :class:`~repro.errors.TransientIOError` from a fault layer or a
real flaky device, and :class:`~repro.errors.ChecksumError` from the
checksum layer (a transient bit flip reads clean the second time).
Persistent corruption exhausts the budget and propagates, handing the
failure to the executor's shard-degradation ladder.

Backoff is exponential with deterministic jitter: the jitter fraction is
a hash of ``(file, offset, attempt)``, not an RNG draw, so chaos runs
stay reproducible.  The default base delay is zero — in a simulated-disk
bench there is nothing to wait *for*; real deployments tune the policy.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.errors import ChecksumError, StorageError, TransientIOError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.resilience._delegate import DelegatingBackend

#: Errors worth retrying — anything else is a programming error or a
#: persistent failure the caller must see immediately.
RETRYABLE = (TransientIOError, ChecksumError)


def _jitter_hash(name: str, offset: int, attempt: int) -> float:
    digest = hashlib.blake2b(
        f"{name}\x1f{offset}\x1f{attempt}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter."""

    #: Total read attempts (1 = no retries).
    attempts: int = 3
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    max_delay_s: float = 0.05
    #: Jitter fraction: the delay is scaled by ``1 ± jitter``.
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise StorageError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise StorageError("retry delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise StorageError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_for(self, attempt: int, name: str = "", offset: int = 0) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s
        )
        if delay and self.jitter:
            swing = 2.0 * _jitter_hash(name, offset, attempt) - 1.0
            delay *= 1.0 + self.jitter * swing
        return max(delay, 0.0)


class ResilientBackend(DelegatingBackend):
    """Apply a :class:`RetryPolicy` to the inner backend's reads."""

    def __init__(
        self, inner, policy: RetryPolicy = None, *, registry=None, tracer=None
    ) -> None:
        super().__init__(inner)
        self.policy = policy or RetryPolicy()
        self.retries = 0
        self._retry_counter = (registry or get_registry()).counter(
            "repro_storage_retries_total",
            help="Backend reads re-issued after a retryable failure.",
        )
        self._tracer = tracer

    def read(self, name: str, offset: int, length: int) -> bytes:
        attempt = 1
        while True:
            try:
                return self.inner.read(name, offset, length)
            except RETRYABLE as exc:
                if attempt >= self.policy.attempts:
                    raise
                delay = self.policy.delay_for(attempt, name, offset)
                self.retries += 1
                self._retry_counter.inc()
                tracer = self._tracer or get_tracer()
                tracer.record(
                    "resilience.retry",
                    delay * 1000.0,
                    file=name,
                    offset=offset,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
